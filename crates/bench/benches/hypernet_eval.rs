//! The HyperNet's one-shot evaluation claim: accuracy of a candidate at
//! the cost of a single validation pass with inherited weights, vs the
//! cost of standalone training (even a single epoch).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use yoso_arch::{Genotype, NetworkSkeleton};
use yoso_dataset::{SynthCifar, SynthCifarConfig};
use yoso_hypernet::{HyperNet, HyperTrainConfig};
use yoso_nn::{CellNetwork, TrainConfig};

fn bench_hypernet(c: &mut Criterion) {
    let skeleton = NetworkSkeleton::tiny();
    let data = SynthCifar::generate(&SynthCifarConfig::tiny());
    let mut hyper = HyperNet::new(skeleton.clone(), 0);
    let cfg = HyperTrainConfig {
        epochs: 2,
        batch_size: 32,
        augment: false,
        ..Default::default()
    };
    hyper.train(&data, &cfg);
    let mut rng = StdRng::seed_from_u64(1);
    let genotypes: Vec<Genotype> = (0..8).map(|_| Genotype::random(&mut rng)).collect();

    c.bench_function("hypernet_inherited_eval", |b| {
        let mut i = 0;
        b.iter(|| {
            let g = &genotypes[i % 8];
            i += 1;
            black_box(hyper.evaluate_genotype(g, &data.val, 64))
        })
    });

    c.bench_function("standalone_one_epoch_train", |b| {
        let mut i = 0;
        b.iter(|| {
            let g = &genotypes[i % 8];
            i += 1;
            let mut net = CellNetwork::new(skeleton.compile(g), 0);
            let cfg = TrainConfig {
                epochs: 1,
                batch_size: 32,
                augment: false,
                ..Default::default()
            };
            black_box(net.train(&data, &cfg).final_val_acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hypernet
}
criterion_main!(benches);
