//! # yoso-bench
//!
//! Experiment drivers and benchmark harness regenerating **every table and
//! figure** of the paper's evaluation (see DESIGN.md §4 for the index):
//!
//! | target | regenerates |
//! |---|---|
//! | `fig4_regressors` | Fig. 4 — six regression models' MSE |
//! | `fig5_hypernet` | Fig. 5(a) training curve, 5(b) ranking correlation |
//! | `fig6_search` | Fig. 6(a) RL vs random, 6(b)/(c) trade-off scatters |
//! | `table2_comparison` | Table 2 — two-stage vs Yoso_lat / Yoso_eer |
//! | `fig7_normalized` | Fig. 7 — normalized energy/latency bars |
//! | `ablations` | design-choice ablations called out in DESIGN.md |
//!
//! Criterion benches (`cargo bench -p yoso-bench`) quantify the §III-E
//! speedup claims (GP predictor vs exact simulation, HyperNet inheritance
//! vs standalone training).
//!
//! This library hosts the small shared utilities: CLI flag parsing, CSV
//! output under `results/`, and aligned table printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

/// Returns (and creates) the `results/` directory next to the workspace
/// root (or under `YOSO_RESULTS_DIR` if set).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("YOSO_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file into [`results_dir`]; returns its path.
///
/// # Panics
///
/// Panics on I/O failure.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(&path, out).expect("write csv");
    path
}

/// Reads a CSV produced by [`write_csv`]; returns (header, rows).
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read.
pub fn read_csv(name: &str) -> std::io::Result<(Vec<String>, Vec<Vec<String>>)> {
    let text = fs::read_to_string(results_dir().join(name))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .unwrap_or("")
        .split(',')
        .map(str::to_string)
        .collect();
    let rows = lines
        .map(|l| l.split(',').map(str::to_string).collect())
        .collect();
    Ok((header, rows))
}

/// Build/runtime provenance block shared by every `BENCH_*.json`
/// emitter: detected core count, the matmul and worker-pool thread
/// settings in effect, and the build profile. Without this a snapshot
/// number is uninterpretable — a 2x speedup measured on one core in a
/// debug build is a different claim than the same ratio in release on
/// eight.
///
/// Returns a JSON object fragment (no trailing comma/newline) indented
/// for embedding at the given level, e.g.
/// `"meta": { "cores": 8, ... }`.
pub fn bench_meta_json(indent: usize) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    format!(
        "\"meta\": {{\n{inner}\"cores\": {cores},\n{inner}\"matmul_threads\": {},\n{inner}\"pool_threads\": {},\n{inner}\"simd_tier\": \"{}\",\n{inner}\"quant_tier\": \"{}\",\n{inner}\"profile\": \"{profile}\"\n{pad}}}",
        yoso_tensor::matmul_threads(),
        yoso_pool::num_threads(),
        yoso_tensor::simd_tier(),
        yoso_tensor::quant_tier(),
    )
}

/// Runs a bench binary's fallible body: on `Err` the full
/// [`yoso_core::Error`] chain (error plus every `source()` cause) is
/// printed to stderr and the process exits with status 1, so failures
/// surface as readable diagnostics instead of `unwrap` panics. On
/// success the chaos injection counters (if a `--chaos-plan` was armed)
/// are reported via [`finish_chaos`].
pub fn run_main(body: impl FnOnce() -> Result<(), yoso_core::Error>) {
    match body() {
        Err(e) => {
            eprintln!("error: {}", yoso_core::error_chain(&e));
            std::process::exit(1);
        }
        Ok(()) => finish_chaos(),
    }
}

/// The flag surface shared by every bench binary, parsed once.
///
/// Centralizes the flags each driver used to scan for by hand —
/// `--threads`, `--matmul-threads`, `--trace-out`, `--chaos-plan`,
/// `--scoring` — plus typed accessors for bin-specific flags, so a new
/// binary gets the whole shared surface from two lines:
///
/// ```no_run
/// let args = yoso_bench::Args::parse();
/// let trace = args.configure(); // threads + chaos + trace, one call
/// ```
#[derive(Debug, Clone)]
pub struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Args {
        Args::from_argv(std::env::args().collect())
    }

    /// Parses an explicit argument vector (tests, embedded drivers).
    pub fn from_argv(argv: Vec<String>) -> Args {
        Args { argv }
    }

    /// Value of `--flag <value>`.
    pub fn value(&self, flag: &str) -> Option<String> {
        self.argv
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.argv.get(i + 1).cloned())
    }

    /// `--flag <n>` parsed as usize, with default.
    pub fn usize(&self, flag: &str, default: usize) -> usize {
        self.value(flag)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// `--flag <x>` parsed as u64, with default.
    pub fn u64(&self, flag: &str, default: u64) -> u64 {
        self.value(flag)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// `--flag <x>` parsed as f64, with default.
    pub fn f64(&self, flag: &str, default: f64) -> f64 {
        self.value(flag)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Presence of a boolean `--flag`.
    pub fn present(&self, flag: &str) -> bool {
        self.argv.iter().any(|a| a == flag)
    }

    /// The shared `--scoring f32|int8` flag as a typed precision
    /// (absent means f32).
    ///
    /// # Errors
    ///
    /// [`yoso_core::Error::InvalidConfig`] on any other value.
    pub fn scoring(&self) -> Result<yoso_core::ScoringPrecision, yoso_core::Error> {
        match self.value("--scoring").as_deref() {
            None | Some("f32") => Ok(yoso_core::ScoringPrecision::F32),
            Some("int8") => Ok(yoso_core::ScoringPrecision::Int8),
            Some(other) => Err(yoso_core::Error::InvalidConfig(format!(
                "--scoring must be f32 or int8, got {other:?}"
            ))),
        }
    }

    /// The shared `--surrogate exact|sparse` flag as a typed
    /// [`yoso_core::SurrogateKind`] (absent means exact — the seed
    /// behavior).
    ///
    /// # Errors
    ///
    /// [`yoso_core::Error::InvalidConfig`] on any other value.
    pub fn surrogate(&self) -> Result<yoso_core::SurrogateKind, yoso_core::Error> {
        match self.value("--surrogate").as_deref() {
            None | Some("exact") => Ok(yoso_core::SurrogateKind::Exact),
            Some("sparse") => Ok(yoso_core::SurrogateKind::Sparse),
            Some(other) => Err(yoso_core::Error::InvalidConfig(format!(
                "--surrogate must be exact or sparse, got {other:?}"
            ))),
        }
    }

    /// The shared `--pareto-out <path>` flag: where to write the final
    /// non-dominated archive as CSV (see
    /// [`yoso_core::save_pareto_csv`]). Absent means don't write it.
    pub fn pareto_out(&self) -> Option<PathBuf> {
        self.value("--pareto-out").map(PathBuf::from)
    }

    /// Applies the shared thread flags and returns the resolved worker
    /// count:
    ///
    /// * `--threads <n>` sizes the global worker pool (candidate-level
    ///   parallelism: rollout fan-out, batched evaluation);
    /// * `--matmul-threads <n>` independently sizes the packed-GEMM
    ///   panel parallelism inside a single matmul
    ///   ([`yoso_tensor::set_matmul_threads`]).
    ///
    /// `0` or an absent flag means "all cores" for both. Both settings
    /// are recorded in every `BENCH_*.json` via [`bench_meta_json`].
    pub fn configure_threads(&self) -> usize {
        yoso_pool::set_num_threads(self.usize("--threads", 0));
        yoso_tensor::set_matmul_threads(self.usize("--matmul-threads", 0));
        yoso_pool::num_threads()
    }

    /// Applies the shared `--chaos-plan <path>` flag: when present,
    /// loads a [`yoso_chaos::FaultPlan`] from the file and arms the
    /// global fault injector for the rest of the process, printing
    /// which faults are in play. Without the flag chaos stays disarmed
    /// and every hook reduces to one relaxed atomic load.
    ///
    /// Returns `true` when a plan was armed.
    ///
    /// # Panics
    ///
    /// Panics when the flag is present but the file cannot be read or
    /// parsed — a bench invoked with a broken fault plan should fail
    /// loudly, not silently run fault-free.
    pub fn configure_chaos(&self) -> bool {
        let Some(path) = self.value("--chaos-plan") else {
            return false;
        };
        let plan = yoso_chaos::FaultPlan::load(&path)
            .unwrap_or_else(|e| panic!("--chaos-plan {path}: {e}"));
        eprintln!(
            "[chaos] armed plan from {path}: seed {}, {} rule(s): {}",
            plan.seed,
            plan.rules.len(),
            plan.rules
                .iter()
                .map(|r| r.kind.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        yoso_chaos::install(&plan);
        true
    }

    /// Applies the shared `--trace-out <path>` flag (see
    /// [`configure_trace`]).
    pub fn configure_trace(&self) -> yoso_trace::Trace {
        let Some(path) = self.value("--trace-out") else {
            return yoso_trace::Trace::disabled();
        };
        match yoso_trace::Trace::to_path(&path) {
            Ok(trace) => {
                yoso_trace::set_enabled(true);
                eprintln!("[trace] writing JSONL events to {path}");
                trace
            }
            Err(e) => {
                eprintln!("[trace] cannot open {path}: {e}; tracing disabled");
                yoso_trace::Trace::disabled()
            }
        }
    }

    /// The full shared setup in one call — threads, chaos, trace —
    /// returning the trace handle (pair with [`finish_trace`]).
    pub fn configure(&self) -> yoso_trace::Trace {
        self.configure_threads();
        self.configure_chaos();
        self.configure_trace()
    }
}

/// Value of `--flag <value>` in the process arguments.
pub fn arg_value(flag: &str) -> Option<String> {
    Args::parse().value(flag)
}

/// `--flag <n>` parsed as usize, with default.
pub fn arg_usize(flag: &str, default: usize) -> usize {
    Args::parse().usize(flag, default)
}

/// `--flag <x>` parsed as u64, with default.
pub fn arg_u64(flag: &str, default: u64) -> u64 {
    Args::parse().u64(flag, default)
}

/// Presence of a boolean `--flag`.
pub fn arg_present(flag: &str) -> bool {
    Args::parse().present(flag)
}

/// Applies the shared thread flags from the process arguments (see
/// [`Args::configure_threads`]).
pub fn configure_threads() -> usize {
    Args::parse().configure_threads()
}

/// Arms the shared `--chaos-plan` flag from the process arguments (see
/// [`Args::configure_chaos`]).
///
/// # Panics
///
/// As [`Args::configure_chaos`].
pub fn configure_chaos() -> bool {
    Args::parse().configure_chaos()
}

/// Prints the per-kind chaos injection counters at the end of a run and
/// disarms the injector. No-op when [`configure_chaos`] armed nothing.
pub fn finish_chaos() {
    if !yoso_chaos::armed() {
        return;
    }
    for s in yoso_chaos::stats() {
        if s.opportunities > 0 {
            eprintln!(
                "[chaos] {}: injected {} / {} opportunities",
                s.kind.name(),
                s.injected,
                s.opportunities
            );
        }
    }
    yoso_chaos::disarm();
}

/// Applies the shared `--trace-out <path>` flag: when present, switches
/// global telemetry collection on and opens a JSONL file sink at the
/// given path; otherwise returns [`yoso_trace::Trace::disabled`] and
/// leaves telemetry off (the near-no-op default).
///
/// Pair with [`finish_trace`] at the end of the run.
pub fn configure_trace() -> yoso_trace::Trace {
    Args::parse().configure_trace()
}

/// End-of-run telemetry: appends the subsystem summary events
/// (`cache_summary`, `gp_summary`, `pool_summary`, `controller_summary`
/// — process-cumulative totals) to `trace`, prints an aligned summary
/// table to stdout, and flushes the sink. No-op for a disabled trace.
pub fn finish_trace(trace: &yoso_trace::Trace) {
    if !trace.is_enabled() {
        return;
    }
    use yoso_trace::Event;
    let cs = yoso_accel::cache::stats();
    let reg = yoso_trace::snapshot();
    let hist = |name: &str| -> (u64, f64) {
        reg.histogram(name)
            .map_or((0, 0.0), |h| (h.count(), h.sum() as f64 / 1e6))
    };
    trace.emit(
        Event::new("cache_summary")
            .with_u64("hits", cs.hits)
            .with_u64("misses", cs.misses)
            .with_u64("contended_reads", cs.contended_reads)
            .with_u64("contended_writes", cs.contended_writes)
            .with_u64("entries", cs.entries as u64),
    );
    let (gp_calls, gp_ms) = hist("gp.predict_batch");
    trace.emit(
        Event::new("gp_summary")
            .with_u64("batches", reg.counter("gp.batches"))
            .with_u64("points", reg.counter("gp.points"))
            .with_u64("timed_calls", gp_calls)
            .with_f64("total_ms", gp_ms),
    );
    let busy_ns = reg.counter("pool.busy_ns");
    let thread_ns = reg.counter("pool.thread_ns");
    let utilization = if thread_ns == 0 {
        0.0
    } else {
        busy_ns as f64 / thread_ns as f64
    };
    trace.emit(
        Event::new("pool_summary")
            .with_u64("maps", reg.counter("pool.maps"))
            .with_u64("items", reg.counter("pool.items"))
            .with_f64("busy_ms", busy_ns as f64 / 1e6)
            .with_f64("thread_ms", thread_ns as f64 / 1e6)
            .with_f64("utilization", utilization),
    );
    let (samples, sample_ms) = hist("controller.sample");
    let (updates, update_ms) = hist("controller.update");
    trace.emit(
        Event::new("controller_summary")
            .with_u64("samples", samples)
            .with_f64("sample_ms", sample_ms)
            .with_u64("updates", updates)
            .with_f64("update_ms", update_ms),
    );
    let mut t = Table::new(&["subsystem", "metric", "value"]);
    let mut push = |sub: &str, metric: &str, value: String| {
        t.row(vec![sub.to_string(), metric.to_string(), value]);
    };
    push(
        "sim cache",
        "hits / misses",
        format!("{} / {}", cs.hits, cs.misses),
    );
    push(
        "sim cache",
        "hit rate",
        format!("{:.1}%", 100.0 * cs.hit_rate()),
    );
    push("sim cache", "entries", cs.entries.to_string());
    push(
        "sim cache",
        "contended locks",
        (cs.contended_reads + cs.contended_writes).to_string(),
    );
    push(
        "gp",
        "predict batches",
        reg.counter("gp.batches").to_string(),
    );
    push(
        "gp",
        "predicted points",
        reg.counter("gp.points").to_string(),
    );
    push("gp", "predict time", format!("{gp_ms:.1} ms"));
    push(
        "pool",
        "maps / items",
        format!(
            "{} / {}",
            reg.counter("pool.maps"),
            reg.counter("pool.items")
        ),
    );
    push(
        "pool",
        "busy / thread time",
        format!(
            "{:.1} / {:.1} ms",
            busy_ns as f64 / 1e6,
            thread_ns as f64 / 1e6
        ),
    );
    push(
        "pool",
        "utilization",
        format!("{:.1}%", 100.0 * utilization),
    );
    push(
        "controller",
        "samples",
        format!("{samples} ({sample_ms:.1} ms)"),
    );
    push(
        "controller",
        "updates",
        format!("{updates} ({update_ms:.1} ms)"),
    );
    println!("\n=== telemetry summary (cumulative) ===\n{t}");
    println!("events emitted: {}", trace.events_emitted());
    trace.flush();
}

/// Minimal aligned-column table printer for experiment output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            (0..ncol)
                .map(|i| format!("{:>width$}", cells[i], width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Rows as strings (for CSV reuse).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["model", "mse"]);
        t.row(vec!["GP".into(), "0.001".into()]);
        t.row(vec!["LinearRegression".into(), "12.5".into()]);
        let s = t.render();
        assert!(s.contains("model"));
        assert!(s.contains("LinearRegression"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn table_rejects_bad_row() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn bench_meta_json_is_well_formed() {
        let meta = bench_meta_json(2);
        assert!(meta.starts_with("\"meta\": {"));
        assert!(meta.contains("\"cores\":"));
        assert!(meta.contains("\"matmul_threads\":"));
        assert!(meta.contains("\"pool_threads\":"));
        assert!(
            meta.contains("\"profile\": \"debug\"") || meta.contains("\"profile\": \"release\"")
        );
        // Embeds into a valid top-level object (balanced braces).
        let doc = format!("{{\n  {meta}\n}}");
        let opens = doc.matches('{').count();
        assert_eq!(opens, doc.matches('}').count());
    }

    #[test]
    fn args_typed_accessors() {
        let args = Args::from_argv(
            [
                "bin",
                "--threads",
                "4",
                "--seed",
                "7",
                "--noise",
                "0.5",
                "--paper",
                "--scoring",
                "int8",
                "--part",
                "both",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        assert_eq!(args.usize("--threads", 0), 4);
        assert_eq!(args.u64("--seed", 0), 7);
        assert!((args.f64("--noise", 0.0) - 0.5).abs() < 1e-12);
        assert!(args.present("--paper"));
        assert!(!args.present("--fast-evaluator"));
        assert_eq!(args.value("--part").as_deref(), Some("both"));
        assert_eq!(args.value("--missing"), None);
        assert_eq!(args.usize("--missing", 9), 9);
        assert_eq!(args.scoring().unwrap(), yoso_core::ScoringPrecision::Int8);
    }

    #[test]
    fn args_surrogate_parses_and_rejects_like_scoring() {
        let sparse = Args::from_argv(
            ["bin", "--surrogate", "sparse"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(
            sparse.surrogate().unwrap(),
            yoso_core::SurrogateKind::Sparse
        );
        let exact = Args::from_argv(
            ["bin", "--surrogate", "exact"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(exact.surrogate().unwrap(), yoso_core::SurrogateKind::Exact);
        let default = Args::from_argv(vec!["bin".to_string()]);
        assert_eq!(
            default.surrogate().unwrap(),
            yoso_core::SurrogateKind::Exact
        );

        let bad = Args::from_argv(
            ["bin", "--surrogate", "dense"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        match bad.surrogate() {
            Err(yoso_core::Error::InvalidConfig(msg)) => {
                assert!(msg.contains("exact or sparse"), "message: {msg}");
                assert!(msg.contains("dense"), "message: {msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn args_pareto_out_is_an_optional_path() {
        let args = Args::from_argv(
            ["bin", "--pareto-out", "/tmp/front.csv"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(
            args.pareto_out(),
            Some(std::path::PathBuf::from("/tmp/front.csv"))
        );
        assert_eq!(Args::from_argv(vec!["bin".to_string()]).pareto_out(), None);
    }

    #[test]
    fn args_scoring_rejects_unknown_precision() {
        let args = Args::from_argv(
            ["bin", "--scoring", "fp16"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert!(args.scoring().is_err());
        let default = Args::from_argv(vec!["bin".to_string()]);
        assert_eq!(default.scoring().unwrap(), yoso_core::ScoringPrecision::F32);
    }

    #[test]
    fn csv_roundtrip() {
        std::env::set_var(
            "YOSO_RESULTS_DIR",
            std::env::temp_dir().join("yoso_test_results"),
        );
        let rows = vec![vec!["1".to_string(), "2.5".to_string()]];
        write_csv("unit_test.csv", &["a", "b"], &rows);
        let (header, got) = read_csv("unit_test.csv").unwrap();
        assert_eq!(header, vec!["a", "b"]);
        assert_eq!(got, rows);
    }
}
