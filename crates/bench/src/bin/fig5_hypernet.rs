//! **Figure 5**: effectiveness of the HyperNet accuracy evaluator.
//!
//! * Part (a): HyperNet training curve — per epoch, the validation
//!   accuracy of one randomly sampled sub-model with inherited weights.
//! * Part (b): correlation between inherited-weight accuracy and
//!   fully-trained accuracy over random sub-models (paper: 130 models;
//!   scaled down by default).
//!
//! Usage: `cargo run --release -p yoso-bench --bin fig5_hypernet --
//!   [--part a|b|both] [--epochs 10] [--models 16] [--full-epochs 6]
//!   [--seed 0] [--scale tiny|small|paper] [--noise 0.3] [--label-noise 0.02]`
//!
//! `--noise` overrides the dataset difficulty: harder datasets spread the
//! fully-trained accuracies of different architectures apart, which is
//! what part (b)'s ranking correlation needs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use yoso_arch::{Genotype, NetworkSkeleton};
use yoso_bench::{run_main, write_csv, Args, Table};
use yoso_core::error::Error;
use yoso_dataset::{SynthCifar, SynthCifarConfig};
use yoso_hypernet::{HyperNet, HyperTrainConfig};
use yoso_nn::{CellNetwork, TrainConfig};
use yoso_predictor::metrics::{kendall_tau, pearson, spearman};

fn scale(args: &Args) -> (NetworkSkeleton, SynthCifarConfig) {
    match args.value("--scale").as_deref() {
        Some("tiny") => (NetworkSkeleton::tiny(), SynthCifarConfig::tiny()),
        Some("paper") => (
            NetworkSkeleton::paper_default(),
            SynthCifarConfig::default_scale(),
        ),
        _ => (NetworkSkeleton::small(), SynthCifarConfig::small()),
    }
}

fn main() {
    run_main(real_main);
}

fn real_main() -> Result<(), Error> {
    let args = Args::parse();
    let part = args.value("--part").unwrap_or_else(|| "both".into());
    let seed = args.u64("--seed", 0);
    let trace = args.configure_trace();
    args.configure_chaos();
    let (skeleton, mut data_cfg) = scale(&args);
    if let Some(n) = args.value("--noise").and_then(|v| v.parse::<f32>().ok()) {
        data_cfg.noise = n;
    }
    if let Some(n) = args
        .value("--label-noise")
        .and_then(|v| v.parse::<f64>().ok())
    {
        data_cfg.label_noise = n;
    }
    let data = SynthCifar::generate(&data_cfg);

    let epochs = args.usize("--epochs", 10);
    println!(
        "HyperNet on {}x{} images, {} cells, {} train examples",
        data_cfg.image_hw, data_cfg.image_hw, skeleton.num_cells, data_cfg.train_count
    );
    let mut hyper = HyperNet::new(skeleton.clone(), seed);
    println!("shared parameters: {}", hyper.param_count());
    let cfg = HyperTrainConfig {
        epochs,
        batch_size: 32,
        seed,
        ..Default::default()
    };
    let t0 = Instant::now();
    let history = hyper.train(&data, &cfg);
    println!("trained {epochs} epochs in {:.1?}", t0.elapsed());

    if part == "a" || part == "both" {
        println!("\n=== Fig. 5(a): HyperNet training process ===");
        let mut table = Table::new(&["epoch", "train_loss", "sampled_submodel_val_acc"]);
        let mut rows = Vec::new();
        for h in &history {
            table.row(vec![
                h.epoch.to_string(),
                format!("{:.4}", h.train_loss),
                format!("{:.4}", h.sampled_val_acc),
            ]);
            rows.push(vec![
                h.epoch.to_string(),
                h.train_loss.to_string(),
                h.sampled_val_acc.to_string(),
            ]);
        }
        println!("{table}");
        let p = write_csv(
            "fig5a_training.csv",
            &["epoch", "train_loss", "sampled_val_acc"],
            &rows,
        );
        println!("written {}", p.display());
    }

    if part == "b" || part == "both" {
        let n_models = args.usize("--models", 16);
        let full_epochs = args.usize("--full-epochs", 6);
        println!(
            "\n=== Fig. 5(b): inherited vs fully-trained accuracy ({n_models} random sub-models, {full_epochs} standalone epochs) ==="
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB0B);
        let mut inherited = Vec::with_capacity(n_models);
        let mut full = Vec::with_capacity(n_models);
        let mut rows = Vec::new();
        for i in 0..n_models {
            let genotype = Genotype::random(&mut rng);
            let acc_inherit = hyper.evaluate_genotype(&genotype, &data.val, 64);
            let plan = skeleton.compile(&genotype);
            let mut net = CellNetwork::new(plan, seed + i as u64);
            let train_cfg = TrainConfig {
                epochs: full_epochs,
                batch_size: 32,
                seed: seed + i as u64,
                ..Default::default()
            };
            let hist = net.train(&data, &train_cfg);
            println!(
                "  model {i:>3}: inherited {:.3}  fully-trained {:.3}",
                acc_inherit, hist.final_val_acc
            );
            rows.push(vec![
                i.to_string(),
                acc_inherit.to_string(),
                hist.final_val_acc.to_string(),
            ]);
            inherited.push(acc_inherit);
            full.push(hist.final_val_acc);
        }
        println!(
            "\ncorrelation (inherited vs fully-trained): pearson {:.3}, spearman {:.3}, kendall-tau {:.3}",
            pearson(&inherited, &full),
            spearman(&inherited, &full),
            kendall_tau(&inherited, &full)
        );
        println!("(the paper reports that inherited accuracy correlates with stand-alone accuracy, Fig. 5(b))");
        let p = write_csv(
            "fig5b_correlation.csv",
            &["model", "inherited_acc", "full_acc"],
            &rows,
        );
        println!("written {}", p.display());
    }
    yoso_bench::finish_trace(&trace);
    Ok(())
}
