//! Network-chaos soak and kill-9 recovery drill for the serving stack.
//!
//! Proves the resilience contract end to end against a *real* daemon
//! process (not an in-process server):
//!
//! 1. **Network-fault soak** — a child daemon armed with a seeded
//!    `conn_drop` / `partial_write` / `stall` / `garbage_frame` plan
//!    serves a fleet of [`yoso_client::ResilientClient`] sessions.
//!    Every session must complete via auto-reconnect with its
//!    `search_iter` stream byte-identical to the in-process run of the
//!    same seed — zero lost, zero duplicated iterations.
//! 2. **Disarmed control** — the same fleet against a chaos-free child
//!    must also match the baselines (the soak's identity checks are
//!    meaningful because the clean run passes them too).
//! 3. **Kill-9 drill** — a journaling child is `SIGKILL`ed mid-run
//!    with the fleet's jobs active, relaunched on the same port and
//!    checkpoint root, and every job must still finish with a
//!    byte-identical stream, picked up from the write-ahead journal.
//!
//! Writes `BENCH_server_chaos.json` (reconnect counts, recovery time,
//! jobs recovered) into [`yoso_bench::results_dir`]. Any contract
//! violation exits nonzero — this is the CI `server-chaos` gate.
//!
//! ```text
//! server_chaos [--tenants 4] [--sessions 2] [--iterations 14]
//!              [--kill-iterations 40] [--out BENCH_server_chaos.json]
//! ```
//!
//! (Internally re-executes itself with `--serve` as the child daemon.)

use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use yoso_bench::{bench_meta_json, run_main, Args};
use yoso_chaos::{FaultKind, FaultPlan, FaultRule};
use yoso_client::{Client, ResilientClient, RetryPolicy};
use yoso_core::error::Error;
use yoso_core::evaluation::{calibrate_constraints, SurrogateEvaluator};
use yoso_core::reward::RewardConfig;
use yoso_core::search::SearchConfig;
use yoso_core::session::{SearchSession, Strategy};
use yoso_server::proto::{JobSpec, JobState};
use yoso_server::{Server, ServerConfig};
use yoso_trace::Trace;

fn reward() -> RewardConfig {
    let sk = yoso_arch::NetworkSkeleton::tiny();
    RewardConfig::balanced(calibrate_constraints(&sk, 50, 0, 50.0))
}

fn spec_for(
    tenant: &str,
    iterations: usize,
    seed: u64,
    checkpoint_every: Option<usize>,
) -> JobSpec {
    let mut spec = JobSpec::new(tenant, reward());
    spec.strategy = Strategy::Rl;
    spec.config = SearchConfig {
        iterations,
        rollouts_per_update: 3,
        seed,
        population: 10,
        tournament: 3,
    };
    spec.checkpoint_every = checkpoint_every;
    spec
}

/// The uninterrupted in-process `search_iter` stream for a spec — the
/// yardstick every served session is compared against byte-for-byte.
fn baseline_lines(spec: &JobSpec) -> Vec<String> {
    let mut spec = spec.clone();
    spec.checkpoint_every = None;
    let evaluator = SurrogateEvaluator::new(yoso_arch::NetworkSkeleton::tiny());
    let trace = Trace::memory();
    spec.apply(SearchSession::builder())
        .evaluator(&evaluator)
        .trace(trace.clone())
        .run()
        .expect("baseline run");
    search_iter(&trace.lines())
}

fn search_iter(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .filter(|l| l.starts_with("{\"event\":\"search_iter\""))
        .cloned()
        .collect()
}

/// Child-daemon mode: serve until a shutdown frame (or a SIGKILL from
/// the drill) arrives.
fn serve_mode(args: &Args) -> Result<(), Error> {
    let mut cfg = ServerConfig {
        addr: args.value("--addr").unwrap_or_else(|| "127.0.0.1:0".into()),
        max_concurrent_jobs: args.usize("--max-jobs", 4),
        queue_capacity: 512,
        ..ServerConfig::default()
    };
    if let Some(root) = args.value("--root") {
        cfg.checkpoint_root = Some(root.into());
    }
    if let Some(path) = args.value("--chaos-plan") {
        let plan = FaultPlan::load(&path)
            .map_err(|e| Error::InvalidConfig(format!("--chaos-plan {path}: {e}")))?;
        yoso_chaos::install(&plan);
    }
    // A relaunch may race the killed incarnation's port release.
    let deadline = Instant::now() + Duration::from_secs(10);
    let server = loop {
        match Server::start(cfg.clone()) {
            Ok(s) => break s,
            Err(e) if Instant::now() < deadline => {
                eprintln!("bind {}: {e}; retrying", cfg.addr);
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(Error::InvalidConfig(format!("bind {}: {e}", cfg.addr))),
        }
    };
    println!("listening on {}", server.addr());
    server.wait_for_shutdown_request();
    server.shutdown();
    Ok(())
}

/// Spawns this binary as a `--serve` child and parses the address it
/// bound. Returns the child and the address.
fn spawn_daemon(extra: &[String]) -> Result<(Child, SocketAddr), Error> {
    let exe =
        std::env::current_exe().map_err(|e| Error::InvalidConfig(format!("current_exe: {e}")))?;
    let mut child = Command::new(exe)
        .arg("--serve")
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| Error::InvalidConfig(format!("spawn daemon: {e}")))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line.map_err(|e| Error::InvalidConfig(format!("daemon stdout: {e}")))?;
        if let Some(addr) = line.strip_prefix("listening on ") {
            let addr = addr
                .trim()
                .parse()
                .map_err(|e| Error::InvalidConfig(format!("daemon addr {addr}: {e}")))?;
            // Keep draining stdout so the child never blocks on a full
            // pipe.
            std::thread::spawn(move || for _ in lines {});
            return Ok((child, addr));
        }
    }
    let _ = child.kill();
    Err(Error::InvalidConfig(
        "daemon exited before printing its address".into(),
    ))
}

fn stop_daemon(mut child: Child, addr: SocketAddr) {
    if let Ok(mut c) = Client::connect(addr) {
        let _ = c.shutdown_server();
    }
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return;
            }
        }
    }
}

struct SessionOutcome {
    tenant: String,
    matched: bool,
    reconnects: u64,
}

/// Drives one fleet of resilient sessions against `addr` and verifies
/// every stream byte-identical to its baseline. `specs` pairs each
/// session's spec with its expected `search_iter` stream.
fn drive_fleet(
    addr: SocketAddr,
    specs: &[(JobSpec, Vec<String>)],
) -> Result<Vec<SessionOutcome>, Error> {
    let mut handles = Vec::with_capacity(specs.len());
    for (spec, baseline) in specs {
        let (spec, baseline) = (spec.clone(), baseline.clone());
        let addr = addr.to_string();
        handles.push(std::thread::spawn(
            move || -> Result<SessionOutcome, String> {
                let mut rc = ResilientClient::new(
                    addr,
                    RetryPolicy {
                        max_retries: 40,
                        base_delay: Duration::from_millis(25),
                        max_delay: Duration::from_millis(500),
                        seed: spec.config.seed ^ 0xC0FFEE,
                    },
                );
                let job = rc.submit(&spec).map_err(|e| format!("submit: {e}"))?;
                let (lines, done) = rc.wait_done(job).map_err(|e| format!("wait_done: {e}"))?;
                if done.state != JobState::Completed {
                    return Err(format!(
                        "job {job} ended {} ({})",
                        done.state,
                        done.error.unwrap_or_default()
                    ));
                }
                Ok(SessionOutcome {
                    tenant: spec.tenant.clone(),
                    matched: search_iter(&lines) == baseline,
                    reconnects: rc.reconnects(),
                })
            },
        ));
    }
    let mut outcomes = Vec::with_capacity(handles.len());
    let mut failures = Vec::new();
    for h in handles {
        match h.join() {
            Ok(Ok(o)) => outcomes.push(o),
            Ok(Err(e)) => failures.push(e),
            Err(_) => failures.push("session thread panicked".into()),
        }
    }
    if !failures.is_empty() {
        return Err(Error::InvalidConfig(format!(
            "{} of {} sessions lost: {}",
            failures.len(),
            specs.len(),
            failures.join("; ")
        )));
    }
    let diverged: Vec<&str> = outcomes
        .iter()
        .filter(|o| !o.matched)
        .map(|o| o.tenant.as_str())
        .collect();
    if !diverged.is_empty() {
        return Err(Error::InvalidConfig(format!(
            "streams diverged from baselines (lost or duplicated iterations): {diverged:?}"
        )));
    }
    Ok(outcomes)
}

fn main() {
    let args = Args::parse();
    if args.present("--serve") {
        run_main(|| serve_mode(&args));
        return;
    }
    run_main(real_main);
}

#[allow(clippy::too_many_lines)]
fn real_main() -> Result<(), Error> {
    let args = Args::parse();
    let tenants = args.usize("--tenants", 4).max(1);
    let sessions = args.usize("--sessions", 2).max(1);
    let iterations = args.usize("--iterations", 14);
    let kill_iterations = args.usize("--kill-iterations", 40);
    let out = args
        .value("--out")
        .unwrap_or_else(|| "BENCH_server_chaos.json".into());
    args.configure_threads();

    let scratch = std::env::temp_dir().join(format!("yoso_server_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&scratch)
        .map_err(|e| Error::InvalidConfig(format!("scratch dir: {e}")))?;

    // Baselines for every session, computed chaos-free in this process.
    println!("computing {} baselines...", tenants * sessions);
    let mut soak_specs = Vec::new();
    for t in 0..tenants {
        for s in 0..sessions {
            let spec = spec_for(
                &format!("soak-t{t}"),
                iterations,
                31_000 + (t * sessions + s) as u64,
                None,
            );
            let baseline = baseline_lines(&spec);
            soak_specs.push((spec, baseline));
        }
    }

    // Phase 1: network-fault soak. The child arms the plan; every
    // outbound frame may be dropped, truncated, stalled or preceded by
    // garbage, and the fleet must self-heal around all of it.
    println!("\n=== phase 1: network-fault soak ===");
    let mut plan = FaultPlan::new(4801);
    plan.rules.push(FaultRule::rate(FaultKind::ConnDrop, 0.03));
    plan.rules
        .push(FaultRule::rate(FaultKind::PartialWrite, 0.03));
    plan.rules
        .push(FaultRule::rate(FaultKind::GarbageFrame, 0.06));
    plan.rules
        .push(FaultRule::rate(FaultKind::Stall, 0.05).delay_ms(5));
    let plan_path = scratch.join("net_faults.plan");
    plan.save(&plan_path)
        .map_err(|e| Error::InvalidConfig(format!("write plan: {e}")))?;
    let (child, addr) = spawn_daemon(&[
        "--chaos-plan".into(),
        plan_path.display().to_string(),
        "--max-jobs".into(),
        "4".into(),
    ])?;
    let soak_start = Instant::now();
    let soak = drive_fleet(addr, &soak_specs)?;
    let soak_s = soak_start.elapsed().as_secs_f64();
    let soak_reconnects: u64 = soak.iter().map(|o| o.reconnects).sum();
    stop_daemon(child, addr);
    println!(
        "  {} sessions byte-identical under chaos in {soak_s:.2}s ({soak_reconnects} reconnects)",
        soak.len()
    );

    // Phase 2: disarmed control — same fleet, chaos-free child.
    println!("\n=== phase 2: disarmed control ===");
    let (child, addr) = spawn_daemon(&["--max-jobs".into(), "4".into()])?;
    let clean_start = Instant::now();
    let clean = drive_fleet(addr, &soak_specs)?;
    let clean_s = clean_start.elapsed().as_secs_f64();
    let clean_reconnects: u64 = clean.iter().map(|o| o.reconnects).sum();
    stop_daemon(child, addr);
    println!(
        "  {} sessions byte-identical clean in {clean_s:.2}s ({clean_reconnects} reconnects)",
        clean.len()
    );

    // Phase 3: kill-9 drill. Longer journaled jobs; the daemon dies
    // mid-run and a relaunch on the same port + root must recover every
    // job from the write-ahead journal.
    println!("\n=== phase 3: kill -9 recovery drill ===");
    let root = scratch.join("drill_root");
    std::fs::create_dir_all(&root).map_err(|e| Error::InvalidConfig(format!("drill root: {e}")))?;
    let mut drill_specs = Vec::new();
    for t in 0..tenants {
        let spec = spec_for(
            &format!("drill-t{t}"),
            kill_iterations,
            52_000 + t as u64,
            Some(5),
        );
        let baseline = baseline_lines(&spec);
        drill_specs.push((spec, baseline));
    }
    let (child, addr) = spawn_daemon(&[
        "--root".into(),
        root.display().to_string(),
        "--max-jobs".into(),
        "2".into(),
    ])?;

    // The fleet runs in the background while this thread pulls the
    // trigger.
    let fleet_specs = drill_specs.clone();
    let fleet = std::thread::spawn(move || drive_fleet(addr, &fleet_specs));

    // Kill once jobs are demonstrably mid-flight.
    let armed_at = Instant::now();
    loop {
        if armed_at.elapsed() > Duration::from_secs(30) {
            break; // kill anyway; recovery handles any in-between state
        }
        if let Ok(mut c) = Client::connect(addr) {
            if let Ok(s) = c.stats() {
                if s.running > 0 {
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(500));
    let mut child = child;
    child
        .kill()
        .map_err(|e| Error::InvalidConfig(format!("kill -9: {e}")))?;
    let _ = child.wait();
    println!("  daemon SIGKILLed mid-run; relaunching on {addr}");

    let relaunch = Instant::now();
    let (child2, addr2) = spawn_daemon(&[
        "--root".into(),
        root.display().to_string(),
        "--addr".into(),
        addr.to_string(),
        "--max-jobs".into(),
        "2".into(),
    ])?;
    let recovery_ms = relaunch.elapsed().as_secs_f64() * 1e3;
    if addr2 != addr {
        return Err(Error::InvalidConfig(format!(
            "relaunched daemon bound {addr2}, expected {addr}"
        )));
    }
    let mut admin = Client::connect(addr2)
        .map_err(|e| Error::InvalidConfig(format!("admin reconnect: {e}")))?;
    let jobs_recovered = admin
        .stats()
        .map_err(|e| Error::InvalidConfig(format!("admin stats: {e}")))?
        .jobs_recovered;
    if jobs_recovered == 0 {
        return Err(Error::InvalidConfig(
            "relaunched daemon recovered no jobs from the journal".into(),
        ));
    }
    println!(
        "  relaunched in {recovery_ms:.0} ms; {jobs_recovered} job(s) recovered from the journal"
    );

    let drill = fleet
        .join()
        .map_err(|_| Error::InvalidConfig("fleet thread panicked".into()))??;
    let drill_reconnects: u64 = drill.iter().map(|o| o.reconnects).sum();
    if drill_reconnects == 0 {
        return Err(Error::InvalidConfig(
            "kill -9 drill finished without a single reconnect — the kill missed the run".into(),
        ));
    }
    println!(
        "  {} sessions byte-identical across the kill ({drill_reconnects} reconnects)",
        drill.len()
    );
    drop(admin);
    stop_daemon(child2, addr2);
    let _ = std::fs::remove_dir_all(&scratch);

    let meta = bench_meta_json(2);
    let json = format!(
        "{{\n  \"bench\": \"server chaos soak\",\n  {meta},\n  \"config\": {{\n    \"tenants\": {tenants},\n    \"sessions_per_tenant\": {sessions},\n    \"iterations_per_job\": {iterations},\n    \"kill_drill_iterations\": {kill_iterations}\n  }},\n  \"network_soak\": {{\n    \"sessions\": {},\n    \"byte_identical\": true,\n    \"reconnects\": {soak_reconnects},\n    \"wall_s\": {soak_s:.3}\n  }},\n  \"disarmed_control\": {{\n    \"sessions\": {},\n    \"byte_identical\": true,\n    \"reconnects\": {clean_reconnects},\n    \"wall_s\": {clean_s:.3}\n  }},\n  \"kill9_drill\": {{\n    \"sessions\": {},\n    \"byte_identical\": true,\n    \"jobs_recovered\": {jobs_recovered},\n    \"reconnects\": {drill_reconnects},\n    \"relaunch_to_listening_ms\": {recovery_ms:.1}\n  }}\n}}\n",
        soak.len(),
        clean.len(),
        drill.len(),
    );
    let path = yoso_bench::results_dir().join(&out);
    std::fs::write(&path, json).map_err(|e| Error::InvalidConfig(format!("write {out}: {e}")))?;
    println!("\nwritten {}", path.display());
    Ok(())
}
