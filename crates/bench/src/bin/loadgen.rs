//! Multi-tenant load generator for the yoso-server daemon.
//!
//! Boots an in-process [`yoso_server::Server`], then drives it through
//! two phases:
//!
//! 1. **Cache phase** — for tenant counts 1, 2, 4, 8 (capped at
//!    `--tenants`), each tenant runs the *same* search (same seed) on a
//!    workload fresh to that phase. The first tenant populates the
//!    process-wide simulator cache; every later tenant rides its
//!    entries, so the aggregate cross-tenant hit rate must increase
//!    strictly with the tenant count.
//! 2. **Load phase** — `--tenants` x `--sessions` concurrent client
//!    connections (default 8 x 13 = 104) each submit one streaming job
//!    and collect its live `search_iter` events. Zero lost jobs, every
//!    stream complete, p99 inter-event latency measured client-side.
//!
//! 3. **Journal phase** (in-process mode only) — the same job batch
//!    runs against a journal-free server and a crash-consistent one
//!    (write-ahead journal under a scratch `checkpoint_root`), after a
//!    warm-up pass so both timed batches ride the simulator cache
//!    identically. Journal overhead must stay ≤ 10% of throughput, and
//!    a restart on the populated root must recover every job (the
//!    measured recovery time is reported).
//!
//! Writes `BENCH_server.json` (jobs/sec, p99 iteration latency, hit
//! rate vs tenant count, journal overhead & recovery time) into
//! [`yoso_bench::results_dir`].
//!
//! With `--addr HOST:PORT` the in-process server is skipped and the
//! load is driven against an already-running `yoso_serve` daemon
//! instead; phase-1 cache accounting then comes from `stats` deltas
//! over the wire, and the final `shutdown` frame stops the daemon (the
//! CI `server` job boots the binary, runs loadgen against it, and
//! waits for a clean exit).
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--tenants 8] [--sessions 13]
//!         [--iterations 12] [--max-jobs 8] [--threads N]
//!         [--matmul-threads N] [--chaos-plan FILE]
//!         [--out BENCH_server.json]
//! ```

use std::net::SocketAddr;
use std::time::Instant;

use yoso_bench::{bench_meta_json, run_main, Args, Table};
use yoso_client::Client;
use yoso_core::error::Error;
use yoso_core::evaluation::calibrate_constraints;
use yoso_core::reward::RewardConfig;
use yoso_core::search::SearchConfig;
use yoso_core::session::Strategy;
use yoso_server::proto::{JobSpec, JobState, Reply};
use yoso_server::{Server, ServerConfig};

fn spec_for(tenant: &str, reward: RewardConfig, iterations: usize, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(tenant, reward);
    spec.strategy = Strategy::Rl;
    spec.config = SearchConfig {
        iterations,
        rollouts_per_update: 4,
        seed,
        population: 20,
        tournament: 5,
    };
    spec
}

/// Runs one streaming job to completion, timestamping each event frame
/// as it arrives. Returns (streamed lines, inter-event deltas in ms).
fn drive_job(
    addr: SocketAddr,
    spec: &JobSpec,
    expect_iters: usize,
) -> Result<(Vec<String>, Vec<f64>), Error> {
    let err = |e: yoso_client::ClientError| Error::InvalidConfig(format!("loadgen client: {e}"));
    let mut client = Client::connect(addr).map_err(err)?;
    let job = client.submit(spec, true).map_err(err)?;
    let mut lines = Vec::new();
    let mut deltas = Vec::new();
    let mut last = Instant::now();
    loop {
        match client.next_event().map_err(err)? {
            Reply::Event { line, .. } => {
                let now = Instant::now();
                if line.starts_with("{\"event\":\"search_iter\"") {
                    deltas.push(now.duration_since(last).as_secs_f64() * 1e3);
                    lines.push(line);
                }
                last = now;
            }
            Reply::Done(done) => {
                if done.state != JobState::Completed {
                    return Err(Error::InvalidConfig(format!(
                        "job {job} for {:?} ended {} ({})",
                        spec.tenant,
                        done.state,
                        done.error.unwrap_or_default()
                    )));
                }
                if lines.len() != expect_iters {
                    return Err(Error::InvalidConfig(format!(
                        "job {job} streamed {} search_iter events, expected {expect_iters}",
                        lines.len()
                    )));
                }
                return Ok((lines, deltas));
            }
            other => {
                return Err(Error::InvalidConfig(format!(
                    "unexpected frame {other:?} on job {job}"
                )))
            }
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    run_main(real_main);
}

#[allow(clippy::too_many_lines)]
fn real_main() -> Result<(), Error> {
    let args = Args::parse();
    let tenants = args.usize("--tenants", 8).max(1);
    let sessions = args.usize("--sessions", 13).max(1);
    let iterations = args.usize("--iterations", 12);
    let max_jobs = args.usize("--max-jobs", 8);
    let out = args
        .value("--out")
        .unwrap_or_else(|| "BENCH_server.json".into());
    args.configure_threads();
    args.configure_chaos();
    let _ = args.scoring()?; // validate the shared flag surface early

    let skeleton = yoso_arch::NetworkSkeleton::tiny();
    let reward = RewardConfig::balanced(calibrate_constraints(&skeleton, 50, 0, 50.0));

    let (server, addr): (Option<Server>, SocketAddr) = match args.value("--addr") {
        Some(a) => {
            let addr = a
                .parse()
                .map_err(|e| Error::InvalidConfig(format!("--addr {a}: {e}")))?;
            println!("driving external server on {addr}");
            (None, addr)
        }
        None => {
            let server = Server::start(ServerConfig {
                max_concurrent_jobs: max_jobs,
                queue_capacity: (tenants * sessions + 16).max(256),
                skeleton: skeleton.clone(),
                ..ServerConfig::default()
            })
            .map_err(|e| Error::InvalidConfig(format!("server bind: {e}")))?;
            let addr = server.addr();
            println!("server up on {addr} ({max_jobs} runners)");
            (Some(server), addr)
        }
    };
    let client_err =
        |e: yoso_client::ClientError| Error::InvalidConfig(format!("loadgen client: {e}"));
    let mut admin = Client::connect(addr).map_err(client_err)?;

    // Phase 1: cross-tenant cache hit rate vs tenant count. Jobs run
    // back-to-back (submit, wait) so each phase is deterministic: the
    // first tenant warms the cache, the rest ride it.
    println!("\n=== phase 1: cross-tenant cache reuse ===");
    let mut phase_rows: Vec<(usize, u64, u64, f64)> = Vec::new();
    let baseline = admin.stats().map_err(client_err)?;
    let mut prev = (baseline.cache_hits, baseline.cache_misses);
    for (phase, &t) in [1usize, 2, 4, 8].iter().enumerate() {
        let t = t.min(tenants.max(1));
        if phase_rows.iter().any(|&(n, ..)| n == t) {
            continue;
        }
        // A seed unused by any other phase keeps this phase's design
        // points fresh, so reuse within the phase is cross-tenant only.
        let phase_seed = 7_000 + 13 * phase as u64;
        let names: Vec<String> = (0..t).map(|i| format!("cache-p{phase}-t{i}")).collect();
        for name in &names {
            let spec = spec_for(name, reward, iterations, phase_seed);
            drive_job(addr, &spec, iterations)?;
        }
        // In-process: per-tenant attribution straight from the cache.
        // External daemon: the tenant ledgers live in its process, so
        // take the process-wide stats delta instead — equivalent here
        // because the phase's jobs ran back-to-back with nothing else.
        let (hits, misses) = if server.is_some() {
            let stats = yoso_accel::cache::tenant_stats();
            let (mut hits, mut misses) = (0u64, 0u64);
            for s in stats.iter().filter(|s| names.contains(&s.tenant)) {
                hits += s.hits;
                misses += s.misses;
            }
            (hits, misses)
        } else {
            let s = admin.stats().map_err(client_err)?;
            let delta = (s.cache_hits - prev.0, s.cache_misses - prev.1);
            prev = (s.cache_hits, s.cache_misses);
            delta
        };
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        println!(
            "  {t} tenant(s): {hits} hits / {misses} misses = {:.1}%",
            100.0 * rate
        );
        phase_rows.push((t, hits, misses, rate));
    }
    let strictly_increasing = phase_rows.windows(2).all(|w| w[1].3 > w[0].3);
    if phase_rows.len() > 1 && !strictly_increasing {
        return Err(Error::InvalidConfig(format!(
            "cross-tenant hit rate not strictly increasing: {phase_rows:?}"
        )));
    }

    // Phase 2: concurrent multi-tenant load — one client connection
    // per session, all submitting streaming jobs at once.
    let total_jobs = tenants * sessions;
    println!(
        "\n=== phase 2: {tenants} tenants x {sessions} sessions = {total_jobs} concurrent jobs ==="
    );
    let load_start = Instant::now();
    let mut handles = Vec::with_capacity(total_jobs);
    for tenant_i in 0..tenants {
        for session_i in 0..sessions {
            let spec = spec_for(
                &format!("load-t{tenant_i}"),
                reward,
                iterations,
                90_000 + (tenant_i * sessions + session_i) as u64,
            );
            handles.push(std::thread::spawn(move || {
                drive_job(addr, &spec, iterations)
            }));
        }
    }
    let mut deltas: Vec<f64> = Vec::with_capacity(total_jobs * iterations);
    let mut completed = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(Ok((_, mut d))) => {
                completed += 1;
                deltas.append(&mut d);
            }
            Ok(Err(e)) => failures.push(e.to_string()),
            Err(_) => failures.push("client thread panicked".to_string()),
        }
    }
    let wall_s = load_start.elapsed().as_secs_f64();
    if !failures.is_empty() {
        return Err(Error::InvalidConfig(format!(
            "{} of {total_jobs} jobs lost: {}",
            failures.len(),
            failures.join("; ")
        )));
    }
    let jobs_per_sec = completed as f64 / wall_s.max(1e-9);
    deltas.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile(&deltas, 0.50);
    let p99 = percentile(&deltas, 0.99);
    println!(
        "  {completed}/{total_jobs} jobs in {wall_s:.2}s = {jobs_per_sec:.1} jobs/s; iter latency p50 {p50:.2} ms, p99 {p99:.2} ms"
    );

    // Server-side accounting for the load phase, then a graceful stop
    // (this is also what shuts down an external `yoso_serve` daemon).
    let server_stats = admin.stats().map_err(client_err)?;
    if server_stats.failed != 0 {
        return Err(Error::InvalidConfig(format!(
            "server reports {} failed jobs",
            server_stats.failed
        )));
    }
    let in_process = server.is_some();
    admin.shutdown_server().map_err(client_err)?;
    drop(admin);
    if let Some(server) = server {
        server.shutdown();
    }

    // Phase 3 (in-process only; an external daemon's disk is not ours
    // to journal on): journal overhead + crash-recovery cost. The same
    // batch of jobs runs twice — once journal-free, once with the
    // write-ahead journal armed — after an untimed warm-up pass with
    // the same seeds, so both timed batches ride the simulator cache
    // identically and the delta isolates the journal path.
    let journal_json = if in_process {
        println!("\n=== phase 3: journal overhead & recovery ===");
        let journal_jobs = tenants.max(4);
        let batch_seed = 40_000u64;
        let run_batch = |addr: SocketAddr| -> Result<f64, Error> {
            let start = Instant::now();
            for i in 0..journal_jobs {
                let spec = spec_for(
                    &format!("journal-t{i}"),
                    reward,
                    iterations,
                    batch_seed + i as u64,
                );
                drive_job(addr, &spec, iterations)?;
            }
            Ok(start.elapsed().as_secs_f64())
        };
        let start_server = |root: Option<std::path::PathBuf>| -> Result<Server, Error> {
            Server::start(ServerConfig {
                max_concurrent_jobs: max_jobs,
                skeleton: skeleton.clone(),
                checkpoint_root: root,
                ..ServerConfig::default()
            })
            .map_err(|e| Error::InvalidConfig(format!("journal-phase bind: {e}")))
        };

        let plain = start_server(None)?;
        run_batch(plain.addr())?; // warm-up: populates the sim cache
        let plain_wall = run_batch(plain.addr())?;
        plain.shutdown();

        let root =
            std::env::temp_dir().join(format!("yoso_loadgen_journal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root)
            .map_err(|e| Error::InvalidConfig(format!("journal scratch root: {e}")))?;
        let journaled = start_server(Some(root.clone()))?;
        let journaled_wall = run_batch(journaled.addr())?;
        let mut jc = Client::connect(journaled.addr()).map_err(client_err)?;
        let fsyncs = jc.stats().map_err(client_err)?.journal_fsyncs;
        jc.shutdown_server().map_err(client_err)?;
        drop(jc);
        journaled.shutdown();

        let overhead_pct = 100.0 * (journaled_wall - plain_wall) / plain_wall.max(1e-9);
        println!(
            "  {journal_jobs} jobs: plain {plain_wall:.3}s, journaled {journaled_wall:.3}s \
             ({overhead_pct:+.1}% overhead, {fsyncs} fsyncs)"
        );
        if overhead_pct > 10.0 {
            return Err(Error::InvalidConfig(format!(
                "journal overhead {overhead_pct:.1}% exceeds the 10% budget \
                 (plain {plain_wall:.3}s vs journaled {journaled_wall:.3}s)"
            )));
        }

        // Recovery: a fresh server on the populated root must pick up
        // every journaled job at startup.
        let recover_start = Instant::now();
        let recovered_server = start_server(Some(root.clone()))?;
        let recovery_ms = recover_start.elapsed().as_secs_f64() * 1e3;
        let mut rc = Client::connect(recovered_server.addr()).map_err(client_err)?;
        let recovered = rc.stats().map_err(client_err)?.jobs_recovered;
        rc.shutdown_server().map_err(client_err)?;
        drop(rc);
        recovered_server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
        if recovered != journal_jobs as u64 {
            return Err(Error::InvalidConfig(format!(
                "restart recovered {recovered} jobs from the journal, expected {journal_jobs}"
            )));
        }
        println!("  restart recovered {recovered} jobs in {recovery_ms:.1} ms");
        format!(
            "{{\n    \"jobs\": {journal_jobs},\n    \"plain_wall_s\": {plain_wall:.3},\n    \"journaled_wall_s\": {journaled_wall:.3},\n    \"overhead_pct\": {overhead_pct:.2},\n    \"fsyncs\": {fsyncs},\n    \"restart_recovery_ms\": {recovery_ms:.2},\n    \"jobs_recovered\": {recovered}\n  }}"
        )
    } else {
        println!("\n(journal phase skipped: external daemon)");
        "null".to_string()
    };

    let mut table = Table::new(&["tenants", "hits", "misses", "hit rate"]);
    for &(t, h, m, r) in &phase_rows {
        table.row(vec![
            t.to_string(),
            h.to_string(),
            m.to_string(),
            format!("{:.1}%", 100.0 * r),
        ]);
    }
    println!("\ncross-tenant cache reuse:\n{table}");

    let phases_json: Vec<String> = phase_rows
        .iter()
        .map(|&(t, h, m, r)| {
            format!(
                "      {{ \"tenants\": {t}, \"hits\": {h}, \"misses\": {m}, \"hit_rate\": {r:.4} }}"
            )
        })
        .collect();
    let meta = bench_meta_json(2);
    let json = format!(
        "{{\n  \"bench\": \"server load\",\n  {meta},\n  \"config\": {{\n    \"tenants\": {tenants},\n    \"sessions_per_tenant\": {sessions},\n    \"iterations_per_job\": {iterations},\n    \"max_concurrent_jobs\": {max_jobs}\n  }},\n  \"throughput\": {{\n    \"jobs\": {completed},\n    \"lost_jobs\": 0,\n    \"wall_s\": {wall_s:.3},\n    \"jobs_per_sec\": {jobs_per_sec:.2}\n  }},\n  \"iteration_latency_ms\": {{\n    \"events\": {},\n    \"p50\": {p50:.3},\n    \"p99\": {p99:.3}\n  }},\n  \"cache\": {{\n    \"process_hits\": {},\n    \"process_misses\": {},\n    \"hit_rate_by_tenant_count\": [\n{}\n    ],\n    \"strictly_increasing\": {strictly_increasing}\n  }},\n  \"journal\": {journal_json}\n}}\n",
        deltas.len(),
        server_stats.cache_hits,
        server_stats.cache_misses,
        phases_json.join(",\n"),
    );
    let path = yoso_bench::results_dir().join(&out);
    std::fs::write(&path, json).map_err(|e| Error::InvalidConfig(format!("write {out}: {e}")))?;
    println!("written {}", path.display());
    Ok(())
}
