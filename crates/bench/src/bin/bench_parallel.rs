//! Measures the evaluation-pipeline speedups this repo claims and writes
//! the `BENCH_parallel.json` snapshot checked in at the workspace root:
//!
//! * `collect_samples` (exact fidelity) serial-cold vs parallel-cold vs
//!   warm-cache — the warm/serial ratio is the memoization speedup and
//!   must exceed 2x;
//! * per-point vs batched GP prediction over a rollout-sized batch.
//!
//! Usage: `cargo run --release -p yoso-bench --bin bench_parallel --
//!   [--samples 1000] [--batch 256] [--seed 0] [--out BENCH_parallel.json]
//!   [--trace-out trace.jsonl]`

use std::time::Instant;
use yoso_accel::Simulator;
use yoso_arch::{DesignPoint, NetworkSkeleton};
use yoso_bench::{bench_meta_json, finish_trace, run_main, Args};
use yoso_core::error::Error;
use yoso_predictor::perf::{collect_samples, PerfPredictor};

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    run_main(real_main);
}

fn real_main() -> Result<(), Error> {
    let args = Args::parse();
    let samples = args.usize("--samples", 1000);
    let batch = args.usize("--batch", 256);
    let seed = args.u64("--seed", 0);
    let out = args
        .value("--out")
        .unwrap_or_else(|| "BENCH_parallel.json".into());
    let trace = args.configure_trace();
    args.configure_chaos();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let skeleton = NetworkSkeleton::paper_default();
    let sim = Simulator::exact();

    println!("collect_samples: {samples} samples, exact fidelity, {cores} cores");
    yoso_pool::set_num_threads(1);
    yoso_accel::cache::clear();
    let serial_cold = time_ms(|| {
        collect_samples(&skeleton, &sim, samples, seed);
    });
    println!("  serial, cold cache:   {serial_cold:.1} ms");

    yoso_pool::set_num_threads(0); // all cores
    yoso_accel::cache::clear();
    let parallel_cold = time_ms(|| {
        collect_samples(&skeleton, &sim, samples, seed);
    });
    println!("  parallel, cold cache: {parallel_cold:.1} ms");

    // Same seed again: every layer simulation is now a cache hit.
    let parallel_warm = time_ms(|| {
        collect_samples(&skeleton, &sim, samples, seed);
    });
    println!("  parallel, warm cache: {parallel_warm:.1} ms");
    println!("  {}", yoso_accel::cache::stats());

    let thread_speedup = serial_cold / parallel_cold;
    let cache_speedup = serial_cold / parallel_warm;
    println!("  speedup from threads: {thread_speedup:.2}x");
    println!("  speedup incl. warm cache: {cache_speedup:.2}x (target: >= 2x)");

    println!("gp prediction: batch of {batch} points");
    let train = collect_samples(&skeleton, &Simulator::fast(), 400, seed ^ 0x77);
    let predictor = PerfPredictor::train(&skeleton, &train)?;
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ 0x88);
    let points: Vec<DesignPoint> = (0..batch).map(|_| DesignPoint::random(&mut rng)).collect();
    let per_point = time_ms(|| {
        for p in &points {
            std::hint::black_box(predictor.predict(p));
        }
    });
    let batched = time_ms(|| {
        std::hint::black_box(predictor.predict_batch(&points));
    });
    let gp_speedup = per_point / batched;
    println!("  per-point: {per_point:.1} ms, batched: {batched:.1} ms ({gp_speedup:.2}x)");

    let meta = bench_meta_json(2);
    let json = format!(
        "{{\n  \"bench\": \"parallel evaluation pipeline\",\n  {meta},\n  \"collect_samples\": {{\n    \"samples\": {samples},\n    \"fidelity\": \"exact\",\n    \"serial_cold_ms\": {serial_cold:.1},\n    \"parallel_cold_ms\": {parallel_cold:.1},\n    \"parallel_warm_ms\": {parallel_warm:.1},\n    \"thread_speedup\": {thread_speedup:.2},\n    \"warm_cache_speedup\": {cache_speedup:.2}\n  }},\n  \"gp_prediction\": {{\n    \"batch\": {batch},\n    \"per_point_ms\": {per_point:.1},\n    \"batched_ms\": {batched:.1},\n    \"speedup\": {gp_speedup:.2}\n  }}\n}}\n"
    );
    std::fs::write(&out, json)?;
    println!("written {out}");
    finish_trace(&trace);
    assert!(
        cache_speedup >= 2.0,
        "warm-cache speedup {cache_speedup:.2}x below the 2x target"
    );
    Ok(())
}
