//! **Figure 6**: the RL search strategy.
//!
//! * Part (a): RL vs random search on the composite reward
//!   (`α1 0.5, ω1 −0.4, α2 0.5, ω2 −0.4`); every 10th sample reported.
//! * Part (b): accuracy–energy trade-off trajectory (energy-leaning
//!   constants) with Pareto front; every 20th sample.
//! * Part (c): accuracy–latency trade-off (latency-leaning constants).
//!
//! By default candidates are scored by the deterministic surrogate
//! evaluator (fast; same simulator-backed hardware metrics). Pass
//! `--fast-evaluator` to use the trained HyperNet + GP fast evaluator as
//! in the paper (slower).
//!
//! Usage: `cargo run --release -p yoso-bench --bin fig6_search --
//!   [--part a|b|c|all] [--iterations 2000] [--seed 0] [--fast-evaluator]
//!   [--surrogate exact|sparse] [--pareto-out front.csv]
//!   [--trace-out trace.jsonl]`
//!
//! `--surrogate sparse` swaps the fast evaluator's performance GPs for
//! the inducing-point sparse approximation (only meaningful with
//! `--fast-evaluator`). `--pareto-out` writes the last search's
//! non-dominated archive — accuracy/latency/energy plus the derived
//! power and area proxies — to the given CSV path.
//!
//! With `--trace-out` every search emits one `search_iter` JSONL event
//! per candidate plus start/summary and subsystem events; the run ends
//! with an aligned telemetry table.

use std::time::Instant;
use yoso_arch::NetworkSkeleton;
use yoso_bench::{finish_trace, run_main, write_csv, Args};
use yoso_core::analysis::save_pareto_csv;
use yoso_core::error::Error;
use yoso_core::evaluation::{calibrate_constraints, Evaluator, FastEvaluator, SurrogateEvaluator};
use yoso_core::reward::RewardConfig;
use yoso_core::search::{SearchConfig, SearchOutcome};
use yoso_core::session::{SearchSession, Strategy};
use yoso_dataset::{SynthCifar, SynthCifarConfig};
use yoso_hypernet::HyperTrainConfig;

fn build_evaluator(
    args: &Args,
    skeleton: &NetworkSkeleton,
    seed: u64,
) -> Result<Box<dyn Evaluator>, Error> {
    if args.present("--fast-evaluator") {
        let surrogate = args.surrogate()?;
        println!("building fast evaluator (HyperNet + {surrogate} GP) ...");
        let data = SynthCifar::generate(&SynthCifarConfig::small());
        let cfg = HyperTrainConfig {
            epochs: args.usize("--hyper-epochs", 6),
            batch_size: 32,
            seed,
            ..Default::default()
        };
        Ok(Box::new(FastEvaluator::build_with_surrogate(
            skeleton, &data, &cfg, 400, seed, surrogate,
        )?))
    } else {
        args.surrogate()?; // surface a typed error for bad values even here
        Ok(Box::new(SurrogateEvaluator::new(skeleton.clone())))
    }
}

fn tail_mean(outcome: &SearchOutcome, frac: usize) -> f64 {
    let k = (outcome.history.len() / frac).max(1);
    outcome.history[outcome.history.len() - k..]
        .iter()
        .map(|r| r.reward)
        .sum::<f64>()
        / k as f64
}

fn main() {
    run_main(real_main);
}

fn real_main() -> Result<(), Error> {
    let args = Args::parse();
    let part = args.value("--part").unwrap_or_else(|| "all".into());
    let seed = args.u64("--seed", 0);
    let iterations = args.usize("--iterations", 2000);
    let skeleton = if args.present("--fast-evaluator") {
        NetworkSkeleton::small()
    } else {
        NetworkSkeleton::paper_default()
    };
    let trace = args.configure_trace();
    args.configure_chaos();
    let evaluator = build_evaluator(&args, &skeleton, seed)?;
    let constraints = calibrate_constraints(&skeleton, 300, seed, 40.0);
    println!(
        "constraints (40th pct of random designs): t_lat {:.4} ms, t_eer {:.4} mJ",
        constraints.t_lat_ms, constraints.t_eer_mj
    );
    let search_cfg = SearchConfig {
        iterations,
        rollouts_per_update: 10,
        seed,
        ..SearchConfig::default()
    };
    // The most recent search's outcome, for `--pareto-out`.
    let mut last_outcome: Option<SearchOutcome> = None;

    if part == "a" || part == "all" {
        println!("\n=== Fig. 6(a): RL vs random search ({iterations} iterations) ===");
        let rc = RewardConfig::balanced(constraints);
        let t0 = Instant::now();
        let session = |strategy| {
            SearchSession::builder()
                .evaluator(evaluator.as_ref())
                .reward(rc)
                .config(search_cfg.clone())
                .strategy(strategy)
                .trace(trace.clone())
                .run()
        };
        let rl = session(Strategy::Rl)?;
        let rnd = session(Strategy::Random)?;
        println!("both searches done in {:.1?}", t0.elapsed());
        // Every 10th sample, as in the paper.
        let rows: Vec<Vec<String>> = rl
            .history
            .iter()
            .zip(&rnd.history)
            .step_by(10)
            .map(|(a, b)| {
                vec![
                    a.iteration.to_string(),
                    a.reward.to_string(),
                    b.reward.to_string(),
                ]
            })
            .collect();
        let p = write_csv(
            "fig6a_rl_vs_random.csv",
            &["iteration", "rl_reward", "random_reward"],
            &rows,
        );
        println!(
            "tail-quarter mean reward: RL {:.4} vs random {:.4}  (best: RL {:.4} vs random {:.4})",
            tail_mean(&rl, 4),
            tail_mean(&rnd, 4),
            rl.best().reward,
            rnd.best().reward
        );
        println!("written {}", p.display());
        last_outcome = Some(rl);
    }

    for (tag, label, rc, proj) in [
        (
            "b",
            "accuracy-energy",
            RewardConfig::energy_focused(constraints),
            true,
        ),
        (
            "c",
            "accuracy-latency",
            RewardConfig::latency_focused(constraints),
            false,
        ),
    ] {
        if part != tag && part != "all" {
            continue;
        }
        // MnasNet-style saturation: designs already inside the thresholds
        // compete on accuracy, which is what draws the trajectory toward
        // the high-accuracy end of the Pareto region (as in the paper's
        // scatter plots).
        let mut rc = rc;
        rc.saturate_below_threshold = true;
        println!("\n=== Fig. 6({tag}): trade-off between accuracy and {label} ===");
        let out = SearchSession::builder()
            .evaluator(evaluator.as_ref())
            .reward(rc)
            .config(search_cfg.clone())
            .strategy(Strategy::Rl)
            .trace(trace.clone())
            .run()?;
        // Every 20th sample, as in the paper.
        let rows: Vec<Vec<String>> = out
            .history
            .iter()
            .step_by(20)
            .map(|r| {
                vec![
                    r.iteration.to_string(),
                    r.eval.accuracy.to_string(),
                    r.eval.energy_mj.to_string(),
                    r.eval.latency_ms.to_string(),
                    r.reward.to_string(),
                ]
            })
            .collect();
        let p = write_csv(
            &format!("fig6{tag}_tradeoff.csv"),
            &["iteration", "accuracy", "energy_mj", "latency_ms", "reward"],
            &rows,
        );
        // Progress check: the mean cost metric of explored designs should
        // drop while accuracy holds, i.e. the search drifts toward the
        // Pareto region.
        let metric = |r: &yoso_core::SearchRecord| {
            if proj {
                r.eval.energy_mj
            } else {
                r.eval.latency_ms
            }
        };
        let k = out.history.len() / 4;
        let head: Vec<&yoso_core::SearchRecord> = out.history[..k].iter().collect();
        let tail: Vec<&yoso_core::SearchRecord> =
            out.history[out.history.len() - k..].iter().collect();
        let mean = |v: &[&yoso_core::SearchRecord], f: &dyn Fn(&yoso_core::SearchRecord) -> f64| {
            v.iter().map(|r| f(r)).sum::<f64>() / v.len() as f64
        };
        println!(
            "first quarter: acc {:.3}, {} {:.4} | last quarter: acc {:.3}, {} {:.4}",
            mean(&head, &|r| r.eval.accuracy),
            label,
            mean(&head, &metric),
            mean(&tail, &|r| r.eval.accuracy),
            label,
            mean(&tail, &metric),
        );
        // The session's typed non-dominated archive (3-objective) is
        // the front we persist; the figure's 2D scatter is a
        // projection of it.
        println!("pareto archive size: {} points", out.pareto().len());
        let front_path = yoso_bench::results_dir().join(format!("fig6{tag}_pareto.csv"));
        save_pareto_csv(&out, &front_path)?;
        println!("written {}", p.display());
        last_outcome = Some(out);
    }

    if let Some(path) = args.pareto_out() {
        let out = last_outcome.as_ref().ok_or_else(|| {
            Error::InvalidConfig("--pareto-out needs at least one search part to run".into())
        })?;
        save_pareto_csv(out, &path)?;
        println!(
            "pareto archive ({} entries) written to {}",
            out.pareto().len(),
            path.display()
        );
    }

    finish_trace(&trace);
    Ok(())
}
