//! **Figure 4**: comparison of machine-learning regression models for
//! hardware performance prediction. The paper trains six models on 3000
//! simulator samples, tests on 600, and selects the Gaussian process for
//! its lowest MSE.
//!
//! Usage: `cargo run --release -p yoso-bench --bin fig4_regressors --
//!   [--train 1000] [--test 300] [--seed 0] [--threads 0] [--paper]`
//!
//! `--paper` uses the paper's exact sample counts (3000 / 600).
//! `--threads 0` (default) uses all cores; sampling is deterministic and
//! the output CSVs are byte-identical at any thread count.

use std::time::Instant;
use yoso_accel::Simulator;
use yoso_arch::NetworkSkeleton;
use yoso_bench::{run_main, write_csv, Args, Table};
use yoso_core::error::Error;
use yoso_predictor::metrics::{mae, mse, r2};
use yoso_predictor::perf::collect_samples;
use yoso_predictor::regressors::svr::LinearSvr;
use yoso_predictor::{design_features, fig4_models, Regressor, ScalarStandardizer};

fn main() {
    run_main(real_main);
}

fn real_main() -> Result<(), Error> {
    let args = Args::parse();
    let (n_train, n_test) = if args.present("--paper") {
        (3000, 600)
    } else {
        (args.usize("--train", 1000), args.usize("--test", 300))
    };
    let seed = args.u64("--seed", 0);
    println!("worker pool: {} threads", args.configure_threads());
    let trace = args.configure_trace();
    args.configure_chaos();
    let skeleton = NetworkSkeleton::paper_default();
    let sim = Simulator::exact();

    println!("collecting {n_train} train + {n_test} test samples from the exact simulator ...");
    let t0 = Instant::now();
    let train = collect_samples(&skeleton, &sim, n_train, seed);
    let test = collect_samples(&skeleton, &sim, n_test, seed ^ 1);
    println!("  done in {:.2?}", t0.elapsed());

    let xf = |s: &yoso_predictor::PerfSample| design_features(&s.point, &skeleton);
    let x_train: Vec<Vec<f64>> = train.iter().map(xf).collect();
    let x_test: Vec<Vec<f64>> = test.iter().map(xf).collect();

    for (target, pick) in [
        (
            "energy",
            Box::new(|s: &yoso_predictor::PerfSample| s.energy_mj) as Box<dyn Fn(_) -> f64>,
        ),
        (
            "latency",
            Box::new(|s: &yoso_predictor::PerfSample| s.latency_ms),
        ),
    ] {
        let y_train: Vec<f64> = train.iter().map(&pick).collect();
        let y_test: Vec<f64> = test.iter().map(pick).collect();
        // Standardize targets so MSE is comparable across targets (the
        // paper's Fig. 4 plots MSE in arbitrary units).
        let std = ScalarStandardizer::fit(&y_train);
        let yz_train: Vec<f64> = y_train.iter().map(|&v| std.transform(v)).collect();
        let yz_test: Vec<f64> = y_test.iter().map(|&v| std.transform(v)).collect();

        let mut models: Vec<Box<dyn Regressor + Send>> = fig4_models(seed);
        models.push(Box::new(LinearSvr::new(0.05, 5.0)));
        let mut table = Table::new(&["model", "mse", "mae", "r2", "fit_time"]);
        let mut csv_rows = Vec::new();
        let mut results: Vec<(String, f64)> = Vec::new();
        for model in &mut models {
            let tf = Instant::now();
            model.fit(&x_train, &yz_train)?;
            let fit_time = tf.elapsed();
            let preds = model.predict(&x_test);
            let m = mse(&preds, &yz_test);
            table.row(vec![
                model.name().to_string(),
                format!("{m:.5}"),
                format!("{:.5}", mae(&preds, &yz_test)),
                format!("{:.4}", r2(&preds, &yz_test)),
                format!("{fit_time:.2?}"),
            ]);
            csv_rows.push(vec![
                target.to_string(),
                model.name().to_string(),
                format!("{m}"),
                format!("{}", mae(&preds, &yz_test)),
                format!("{}", r2(&preds, &yz_test)),
            ]);
            results.push((model.name().to_string(), m));
        }
        println!("\n=== Fig. 4 ({target} prediction, standardized-target MSE) ===");
        println!("{table}");
        let best = results
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("models present");
        println!(
            "lowest MSE: {} ({:.5}) — paper selects GaussianProcess",
            best.0, best.1
        );
        let path = write_csv(
            &format!("fig4_{target}.csv"),
            &["target", "model", "mse", "mae", "r2"],
            &csv_rows,
        );
        println!("written {}", path.display());
    }
    println!("{}", yoso_accel::cache::stats());
    yoso_bench::finish_trace(&trace);
    Ok(())
}
