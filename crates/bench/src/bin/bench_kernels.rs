//! Measures the compute-kernel speedups this repo claims and writes the
//! `BENCH_kernels.json` snapshot checked in at the workspace root:
//!
//! * packed register-tiled SGEMM vs the reference blocked kernel on the
//!   im2col panel shapes a HyperNet training step actually produces
//!   (same thread count for both — the win is per-core);
//! * the runtime-dispatched SIMD microkernel vs the forced-scalar tier;
//! * multi-threaded NC-panel SGEMM vs one matmul thread (gated: only
//!   asserted on multi-core machines);
//! * a full conv2d forward+backward training step under both kernels;
//! * the u8xi8 integer GEMM vs f32 SGEMM on the same shapes;
//! * end-to-end HyperNet candidate scoring, f32 vs int8;
//! * incremental GP Cholesky appends (chunks of 50 up to n = 2000) vs a
//!   frozen-hyperparameter full refactorization after every chunk;
//! * the inducing-point sparse GP vs the exact GP, fit + batch predict
//!   at n = 4000 (past the exact model's usual training cap).
//!
//! Targets: >= 2x on the GEMM/conv shapes, >= 2x multi-core scaling
//! (when cores > 1), >= 1.5x int8 scoring, >= 5x on the GP refit,
//! >= 5x on the sparse-vs-exact fit+predict.
//!
//! Usage: `cargo run --release -p yoso-bench --bin bench_kernels --
//!   [--iters 40] [--seed 0] [--out BENCH_kernels.json]`

use std::time::Instant;
use yoso_bench::{bench_meta_json, run_main, Args};
use yoso_core::error::Error;
use yoso_dataset::{SynthCifar, SynthCifarConfig};
use yoso_hypernet::HyperNet;
use yoso_predictor::metrics::spearman;
use yoso_predictor::{GaussianProcess, Regressor, SparseGaussianProcess};
use yoso_tensor::conv::{conv2d_backward_scratch, conv2d_forward_scratch};
use yoso_tensor::matmul::sgemm;
use yoso_tensor::quant::{gemm_q, quantize_activations};
use yoso_tensor::{
    quant_tier, set_kernel, set_simd_tier, simd_tier, ConvGeom, KernelKind, QuantWeights, Scratch,
    SimdTier, Tensor,
};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

/// Best-of-three timing of `iters` repetitions of `f` — the minimum is
/// the least noise-contaminated estimate on a shared machine.
fn bench_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    (0..3)
        .map(|_| time_ms(|| (0..iters).for_each(|_| f())))
        .fold(f64::INFINITY, f64::min)
}

/// im2col panel shapes from one HyperNet training step on the paper
/// skeleton (16x16 input, 16 init channels): per-sample GEMMs are
/// `cout x (cin*k*k) x (hout*wout)`.
const GEMM_SHAPES: &[(&str, usize, usize, usize)] = &[
    ("stem_3x3", 16, 27, 256),
    ("cell_conv3x3", 16, 144, 256),
    ("prep_1x1_concat", 16, 64, 256),
    ("reduction_conv3x3", 32, 288, 64),
    ("wide_conv3x3", 64, 576, 64),
];

fn main() {
    run_main(real_main);
}

fn real_main() -> Result<(), Error> {
    let args = Args::parse();
    let iters = args.usize("--iters", 40);
    let seed = args.u64("--seed", 0);
    let out = args
        .value("--out")
        .unwrap_or_else(|| "BENCH_kernels.json".into());
    let mut rng = StdRng::seed_from_u64(seed);

    // Equal thread count for every comparison: the claim is per-core.
    yoso_tensor::set_matmul_threads(1);
    println!(
        "kernel dispatch: simd tier {}, quant tier {}",
        simd_tier(),
        quant_tier()
    );
    println!(
        "gemm: packed vs reference, {} threads, {iters} iters/shape",
        yoso_tensor::matmul_threads()
    );
    let mut shape_rows = Vec::new();
    let mut log_sum = 0.0;
    for &(name, m, k, n) in GEMM_SHAPES {
        let a: Vec<f32> = (0..m * k).map(|_| rng.random_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut c = vec![0.0f32; m * n];
        set_kernel(KernelKind::Reference);
        let ref_ms = bench_ms(iters, || {
            sgemm(m, k, n, &a, &b, &mut c);
            std::hint::black_box(&c);
        });
        set_kernel(KernelKind::Packed);
        let packed_ms = bench_ms(iters, || {
            sgemm(m, k, n, &a, &b, &mut c);
            std::hint::black_box(&c);
        });
        let speedup = ref_ms / packed_ms;
        log_sum += speedup.ln();
        println!("  {name:>18} {m:>3}x{k:>3}x{n:>3}: reference {ref_ms:.2} ms, packed {packed_ms:.2} ms ({speedup:.2}x)");
        shape_rows.push(format!(
            "      {{ \"name\": \"{name}\", \"m\": {m}, \"k\": {k}, \"n\": {n}, \"reference_ms\": {ref_ms:.3}, \"packed_ms\": {packed_ms:.3}, \"speedup\": {speedup:.2} }}"
        ));
    }
    let gemm_geomean = (log_sum / GEMM_SHAPES.len() as f64).exp();
    println!("  geometric-mean speedup: {gemm_geomean:.2}x (target: >= 2x)");

    // Runtime SIMD dispatch vs the forced-scalar tier of the same packed
    // kernel. The scalar tier still auto-vectorizes under
    // `-C target-cpu=native`, so this measures what the explicit
    // intrinsics buy on top, not SIMD-vs-no-SIMD. Informational (no
    // assertion): equal is acceptable, slower is not expected.
    println!(
        "simd: packed kernel, auto tier ({}) vs forced scalar",
        simd_tier()
    );
    let mut simd_log_sum = 0.0;
    let mut simd_rows = Vec::new();
    for &(name, m, k, n) in GEMM_SHAPES {
        let a: Vec<f32> = (0..m * k).map(|_| rng.random_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut c = vec![0.0f32; m * n];
        set_simd_tier(Some(SimdTier::Scalar));
        let scalar_ms = bench_ms(iters, || {
            sgemm(m, k, n, &a, &b, &mut c);
            std::hint::black_box(&c);
        });
        set_simd_tier(None);
        let auto_ms = bench_ms(iters, || {
            sgemm(m, k, n, &a, &b, &mut c);
            std::hint::black_box(&c);
        });
        let ratio = scalar_ms / auto_ms;
        simd_log_sum += ratio.ln();
        println!(
            "  {name:>18}: scalar {scalar_ms:.2} ms, {} {auto_ms:.2} ms ({ratio:.2}x)",
            simd_tier()
        );
        simd_rows.push(format!(
            "      {{ \"name\": \"{name}\", \"scalar_ms\": {scalar_ms:.3}, \"simd_ms\": {auto_ms:.3}, \"ratio\": {ratio:.2} }}"
        ));
    }
    let simd_geomean = (simd_log_sum / GEMM_SHAPES.len() as f64).exp();
    println!("  geometric-mean simd/scalar: {simd_geomean:.2}x");

    // Multi-threaded NC-panel scaling: one shape large enough to expose
    // several row-block x panel tasks, packed kernel, 1 matmul thread vs
    // all cores. The task grid is fixed so the result is bit-exact at
    // any thread count; only the 2x scaling claim is core-gated.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (mm, mk, mn) = (256usize, 256usize, 2048usize);
    let a: Vec<f32> = (0..mm * mk).map(|_| rng.random_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..mk * mn).map(|_| rng.random_range(-1.0..1.0)).collect();
    let mut c = vec![0.0f32; mm * mn];
    let mt_iters = iters.div_ceil(8).max(2);
    yoso_tensor::set_matmul_threads(1);
    let mt_serial_ms = bench_ms(mt_iters, || {
        sgemm(mm, mk, mn, &a, &b, &mut c);
        std::hint::black_box(&c);
    });
    yoso_tensor::set_matmul_threads(0); // all cores
    let mt_parallel_ms = bench_ms(mt_iters, || {
        sgemm(mm, mk, mn, &a, &b, &mut c);
        std::hint::black_box(&c);
    });
    yoso_tensor::set_matmul_threads(1);
    let mt_speedup = mt_serial_ms / mt_parallel_ms;
    println!(
        "gemm-mt {mm}x{mk}x{mn}: 1 thread {mt_serial_ms:.2} ms, {cores} cores {mt_parallel_ms:.2} ms ({mt_speedup:.2}x{})",
        if cores > 1 { ", target >= 2x" } else { ", single core: scaling not asserted" }
    );

    // Full conv training step (forward + backward) on a mid-network
    // layer, scratch reused for both kernels so the kernel is the only
    // variable.
    let (cn, cin, chw, cout, ck) = (8, 16, 16, 16, 3);
    let x = Tensor::randn(&[cn, cin, chw, chw], 1.0, &mut rng);
    let w = Tensor::he_normal(&[cout, cin, ck, ck], cin * ck * ck, &mut rng);
    let geom = ConvGeom::same(ck, 1);
    let dout = Tensor::randn(&[cn, cout, chw, chw], 1.0, &mut rng);
    let conv_step = |kind: KernelKind| {
        set_kernel(kind);
        let mut scratch = Scratch::new();
        bench_ms(iters.div_ceil(4), || {
            let (y, cols) = conv2d_forward_scratch(&x, &w, geom, false, &mut scratch);
            let (dx, dw) = conv2d_backward_scratch(&x, &w, geom, &cols, &dout, &mut scratch);
            scratch.give(cols);
            std::hint::black_box((y, dx, dw));
        })
    };
    let conv_ref_ms = conv_step(KernelKind::Reference);
    let conv_packed_ms = conv_step(KernelKind::Packed);
    let conv_speedup = conv_ref_ms / conv_packed_ms;
    println!(
        "conv2d fwd+bwd [{cn},{cin},{chw},{chw}] -> {cout}ch {ck}x{ck}: reference {conv_ref_ms:.1} ms, packed {conv_packed_ms:.1} ms ({conv_speedup:.2}x)"
    );
    set_kernel(KernelKind::Packed);

    // Incremental GP appends vs full refactorization per chunk, frozen
    // hyper-parameters on both sides (apples to apples).
    let (n0, n_final, chunk, dims) = (500usize, 2000usize, 50usize, 16usize);
    println!("gp: append chunks of {chunk} from n={n0} to n={n_final} ({dims}-dim features)");
    let xs: Vec<Vec<f64>> = (0..n_final)
        .map(|_| (0..dims).map(|_| rng.random_range(-2.0..2.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().map(|v| v.sin()).sum::<f64>() + 0.25 * x[0] * x[1])
        .collect();
    let make = || GaussianProcess::with_hyperparams(2.0, 1e-2).with_max_train(n_final);

    let mut inc = make();
    inc.fit(&xs[..n0], &ys[..n0])?;
    let incremental_ms = time_ms(|| {
        let mut start = n0;
        while start < n_final {
            let end = (start + chunk).min(n_final);
            inc.append(&xs[start..end], &ys[start..end])
                .expect("append");
            start = end;
        }
    });

    let mut full = make();
    let refit_ms = time_ms(|| {
        let mut end = n0 + chunk;
        while end <= n_final {
            full.fit(&xs[..end], &ys[..end]).expect("refit");
            end += chunk;
        }
    });
    let gp_speedup = refit_ms / incremental_ms;

    // The incremental factor must agree with a from-scratch
    // refactorization of the very same state (frozen standardizers and
    // hyper-parameters). The timing baseline above re-fits its
    // standardizers each chunk, so it is a (slightly) different model —
    // correct for timing, wrong for an equality probe.
    let mut refit_check = inc.clone();
    refit_check.refit().expect("refit");
    let probe: Vec<Vec<f64>> = (0..64)
        .map(|_| (0..dims).map(|_| rng.random_range(-2.0..2.0)).collect())
        .collect();
    let pa = inc.predict_batch_with_variance(&probe);
    let pb = refit_check.predict_batch_with_variance(&probe);
    let max_diff = pa
        .iter()
        .zip(&pb)
        .map(|(&(ma, _), &(mb, _))| (ma - mb).abs())
        .fold(0.0f64, f64::max);
    println!(
        "  refit-per-chunk {refit_ms:.0} ms, incremental {incremental_ms:.0} ms ({gp_speedup:.2}x, target >= 5x), max mean diff {max_diff:.2e}"
    );

    // Sparse (inducing-point) GP vs the exact GP at production scale:
    // one fit plus one 256-point batch predict at n = 4000, past the
    // exact model's usual 2000-point training cap. Same fixed
    // hyper-parameters on both sides; the rank agreement of the two
    // prediction sets is recorded alongside the speedup.
    let sp_n = 4000usize;
    println!("gp-sparse: exact vs inducing-point fit+predict at n={sp_n} ({dims}-dim features)");
    let sp_xs: Vec<Vec<f64>> = (0..sp_n)
        .map(|_| (0..dims).map(|_| rng.random_range(-2.0..2.0)).collect())
        .collect();
    let sp_ys: Vec<f64> = sp_xs
        .iter()
        .map(|x| x.iter().map(|v| v.sin()).sum::<f64>() + 0.25 * x[0] * x[1])
        .collect();
    let sp_probe: Vec<Vec<f64>> = (0..256)
        .map(|_| (0..dims).map(|_| rng.random_range(-2.0..2.0)).collect())
        .collect();
    let mut sp_exact = GaussianProcess::with_hyperparams(2.0, 1e-2).with_max_train(sp_n);
    let mut sp_exact_pred = Vec::new();
    let sp_exact_ms = time_ms(|| {
        sp_exact.fit(&sp_xs, &sp_ys).expect("exact fit");
        sp_exact_pred = sp_exact.predict_batch(&sp_probe);
        std::hint::black_box(&sp_exact_pred);
    });
    let mut sp_sparse = SparseGaussianProcess::with_hyperparams(2.0, 1e-2);
    let mut sp_sparse_pred = Vec::new();
    let sp_sparse_ms = time_ms(|| {
        sp_sparse.fit(&sp_xs, &sp_ys).expect("sparse fit");
        sp_sparse_pred = sp_sparse.predict_batch(&sp_probe);
        std::hint::black_box(&sp_sparse_pred);
    });
    let sp_speedup = sp_exact_ms / sp_sparse_ms;
    let sp_spearman = spearman(&sp_exact_pred, &sp_sparse_pred);
    println!(
        "  exact {sp_exact_ms:.0} ms, sparse ({} inducing) {sp_sparse_ms:.0} ms ({sp_speedup:.2}x, target >= 5x), spearman {sp_spearman:.3}",
        sp_sparse.inducing_len()
    );

    // Raw integer GEMM (u8 activations x i8 weights -> i32) vs the f32
    // packed kernel on the same im2col shapes. Quantization of weights
    // is excluded (done once per candidate); activation quantization is
    // included (paid per batch).
    println!(
        "int8 gemm: u8xi8 ({}) vs f32 packed, same shapes",
        quant_tier()
    );
    let mut q_log_sum = 0.0;
    let mut q_rows = Vec::new();
    for &(name, m, k, n) in GEMM_SHAPES {
        let wf: Vec<f32> = (0..m * k).map(|_| rng.random_range(-1.0..1.0)).collect();
        let xf: Vec<f32> = (0..k * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let qw = QuantWeights::quantize(&wf, m, k);
        let mut xq = Vec::new();
        let mut acc = vec![0i32; m * n];
        let mut cf = vec![0.0f32; m * n];
        let f32_ms = bench_ms(iters, || {
            sgemm(m, k, n, &wf, &xf, &mut cf);
            std::hint::black_box(&cf);
        });
        let int8_ms = bench_ms(iters, || {
            let scale = quantize_activations(&xf, false, &mut xq);
            gemm_q(&qw, &xq, n, &mut acc);
            std::hint::black_box((&acc, scale));
        });
        let ratio = f32_ms / int8_ms;
        q_log_sum += ratio.ln();
        println!("  {name:>18}: f32 {f32_ms:.2} ms, int8 {int8_ms:.2} ms ({ratio:.2}x)");
        q_rows.push(format!(
            "      {{ \"name\": \"{name}\", \"f32_ms\": {f32_ms:.3}, \"int8_ms\": {int8_ms:.3}, \"speedup\": {ratio:.2} }}"
        ));
    }
    let int8_gemm_geomean = (q_log_sum / GEMM_SHAPES.len() as f64).exp();
    println!("  geometric-mean speedup: {int8_gemm_geomean:.2}x");

    // End-to-end candidate scoring: the HyperNet validation pass in f32
    // (tape-based forward) vs int8 (quantize inherited weights once,
    // integer convs, f32 everything else). This is the quantity the
    // search loop actually pays per candidate.
    let sk = yoso_arch::NetworkSkeleton::tiny();
    let data = SynthCifar::generate(&SynthCifarConfig::tiny());
    let hyper = HyperNet::new(sk, seed);
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0x9e37);
    let genos: Vec<yoso_arch::Genotype> = (0..4)
        .map(|_| yoso_arch::Genotype::random(&mut rng2))
        .collect();
    let score_iters = 3;
    // Batch 128 — what `FastEvaluator` actually scores with.
    let score_batch = 128;
    // The two sides are timed in *alternating* rounds rather than two
    // back-to-back `bench_ms` windows: on a shared machine a load spike
    // landing in one window would skew the ratio in either direction,
    // while interleaving gives both sides the same shot at a quiet
    // slot. The speedup is the ratio of the per-side *minima* — each
    // min converges to that side's quiet-slot floor, so additive noise
    // is stripped from both sides instead of polluting the ratio.
    for g in &genos {
        std::hint::black_box(hyper.evaluate_genotype(g, &data.val, score_batch));
        std::hint::black_box(hyper.evaluate_genotype_int8(g, &data.val, score_batch));
    }
    let (mut f32_best, mut int8_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        f32_best = f32_best.min(time_ms(|| {
            for _ in 0..score_iters {
                for g in &genos {
                    std::hint::black_box(hyper.evaluate_genotype(g, &data.val, score_batch));
                }
            }
        }));
        int8_best = int8_best.min(time_ms(|| {
            for _ in 0..score_iters {
                for g in &genos {
                    std::hint::black_box(hyper.evaluate_genotype_int8(g, &data.val, score_batch));
                }
            }
        }));
    }
    let per = (score_iters * genos.len()) as f64;
    let f32_score_ms = f32_best / per;
    let int8_score_ms = int8_best / per;
    let score_speedup = f32_score_ms / int8_score_ms;
    println!(
        "int8 scoring: f32 {f32_score_ms:.1} ms/candidate, int8 {int8_score_ms:.1} ms/candidate ({score_speedup:.2}x, target >= 1.5x)"
    );

    let meta = bench_meta_json(2);
    let json = format!(
        "{{\n  \"bench\": \"compute kernels\",\n  {meta},\n  \"gemm\": {{\n    \"threads\": 1,\n    \"iters\": {iters},\n    \"shapes\": [\n{}\n    ],\n    \"geomean_speedup\": {gemm_geomean:.2}\n  }},\n  \"simd\": {{\n    \"tier\": \"{}\",\n    \"shapes\": [\n{}\n    ],\n    \"geomean_vs_scalar\": {simd_geomean:.2}\n  }},\n  \"gemm_mt\": {{\n    \"m\": {mm}, \"k\": {mk}, \"n\": {mn},\n    \"serial_ms\": {mt_serial_ms:.3},\n    \"parallel_ms\": {mt_parallel_ms:.3},\n    \"speedup\": {mt_speedup:.2},\n    \"asserted\": {}\n  }},\n  \"conv2d_step\": {{\n    \"input\": [{cn}, {cin}, {chw}, {chw}],\n    \"cout\": {cout},\n    \"kernel\": {ck},\n    \"reference_ms\": {conv_ref_ms:.2},\n    \"packed_ms\": {conv_packed_ms:.2},\n    \"speedup\": {conv_speedup:.2}\n  }},\n  \"gp_incremental\": {{\n    \"initial\": {n0},\n    \"final\": {n_final},\n    \"chunk\": {chunk},\n    \"dims\": {dims},\n    \"refit_per_chunk_ms\": {refit_ms:.1},\n    \"incremental_ms\": {incremental_ms:.1},\n    \"speedup\": {gp_speedup:.2},\n    \"max_mean_abs_diff\": {max_diff:.3e}\n  }},\n  \"gp_sparse\": {{\n    \"n\": {sp_n},\n    \"dims\": {dims},\n    \"inducing\": {},\n    \"exact_ms\": {sp_exact_ms:.1},\n    \"sparse_ms\": {sp_sparse_ms:.1},\n    \"speedup\": {sp_speedup:.2},\n    \"spearman\": {sp_spearman:.3}\n  }},\n  \"int8_gemm\": {{\n    \"tier\": \"{}\",\n    \"shapes\": [\n{}\n    ],\n    \"geomean_speedup\": {int8_gemm_geomean:.2}\n  }},\n  \"int8_scoring\": {{\n    \"candidates\": {},\n    \"f32_ms_per_candidate\": {f32_score_ms:.2},\n    \"int8_ms_per_candidate\": {int8_score_ms:.2},\n    \"speedup\": {score_speedup:.2}\n  }}\n}}\n",
        shape_rows.join(",\n"),
        simd_tier(),
        simd_rows.join(",\n"),
        cores > 1,
        sp_sparse.inducing_len(),
        quant_tier(),
        q_rows.join(",\n"),
        genos.len(),
    );
    std::fs::write(&out, json)?;
    println!("written {out}");

    assert!(
        gemm_geomean >= 2.0,
        "gemm geomean speedup {gemm_geomean:.2}x below the 2x target"
    );
    assert!(
        conv_speedup >= 2.0,
        "conv step speedup {conv_speedup:.2}x below the 2x target"
    );
    assert!(
        gp_speedup >= 5.0,
        "gp incremental speedup {gp_speedup:.2}x below the 5x target"
    );
    assert!(
        max_diff < 1e-8,
        "incremental and refit GPs diverged: {max_diff:.3e}"
    );
    assert!(
        sp_speedup >= 5.0,
        "sparse GP fit+predict speedup {sp_speedup:.2}x below the 5x target at n={sp_n}"
    );
    assert!(
        sp_spearman >= 0.9,
        "sparse GP rank agreement {sp_spearman:.3} below 0.9 at n={sp_n}"
    );
    if cores > 1 {
        assert!(
            mt_speedup >= 2.0,
            "multi-threaded gemm speedup {mt_speedup:.2}x below the 2x target on {cores} cores"
        );
    }
    assert!(
        score_speedup >= 1.5,
        "int8 scoring speedup {score_speedup:.2}x below the 1.5x target"
    );
    Ok(())
}
