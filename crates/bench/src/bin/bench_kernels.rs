//! Measures the compute-kernel speedups this repo claims and writes the
//! `BENCH_kernels.json` snapshot checked in at the workspace root:
//!
//! * packed register-tiled SGEMM vs the reference blocked kernel on the
//!   im2col panel shapes a HyperNet training step actually produces
//!   (same thread count for both — the win is per-core);
//! * a full conv2d forward+backward training step under both kernels;
//! * incremental GP Cholesky appends (chunks of 50 up to n = 2000) vs a
//!   frozen-hyperparameter full refactorization after every chunk.
//!
//! Targets: >= 2x on the GEMM/conv shapes, >= 5x on the GP refit.
//!
//! Usage: `cargo run --release -p yoso-bench --bin bench_kernels --
//!   [--iters 40] [--seed 0] [--out BENCH_kernels.json]`

use std::time::Instant;
use yoso_bench::{arg_u64, arg_usize, arg_value, bench_meta_json, run_main};
use yoso_core::error::Error;
use yoso_predictor::{GaussianProcess, Regressor};
use yoso_tensor::conv::{conv2d_backward_scratch, conv2d_forward_scratch};
use yoso_tensor::matmul::sgemm;
use yoso_tensor::{set_kernel, ConvGeom, KernelKind, Scratch, Tensor};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

/// Best-of-three timing of `iters` repetitions of `f` — the minimum is
/// the least noise-contaminated estimate on a shared machine.
fn bench_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    (0..3)
        .map(|_| time_ms(|| (0..iters).for_each(|_| f())))
        .fold(f64::INFINITY, f64::min)
}

/// im2col panel shapes from one HyperNet training step on the paper
/// skeleton (16x16 input, 16 init channels): per-sample GEMMs are
/// `cout x (cin*k*k) x (hout*wout)`.
const GEMM_SHAPES: &[(&str, usize, usize, usize)] = &[
    ("stem_3x3", 16, 27, 256),
    ("cell_conv3x3", 16, 144, 256),
    ("prep_1x1_concat", 16, 64, 256),
    ("reduction_conv3x3", 32, 288, 64),
    ("wide_conv3x3", 64, 576, 64),
];

fn main() {
    run_main(real_main);
}

fn real_main() -> Result<(), Error> {
    let iters = arg_usize("--iters", 40);
    let seed = arg_u64("--seed", 0);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_kernels.json".into());
    let mut rng = StdRng::seed_from_u64(seed);

    // Equal thread count for every comparison: the claim is per-core.
    yoso_tensor::set_matmul_threads(1);
    println!(
        "gemm: packed vs reference, {} threads, {iters} iters/shape",
        yoso_tensor::matmul_threads()
    );
    let mut shape_rows = Vec::new();
    let mut log_sum = 0.0;
    for &(name, m, k, n) in GEMM_SHAPES {
        let a: Vec<f32> = (0..m * k).map(|_| rng.random_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut c = vec![0.0f32; m * n];
        set_kernel(KernelKind::Reference);
        let ref_ms = bench_ms(iters, || {
            sgemm(m, k, n, &a, &b, &mut c);
            std::hint::black_box(&c);
        });
        set_kernel(KernelKind::Packed);
        let packed_ms = bench_ms(iters, || {
            sgemm(m, k, n, &a, &b, &mut c);
            std::hint::black_box(&c);
        });
        let speedup = ref_ms / packed_ms;
        log_sum += speedup.ln();
        println!("  {name:>18} {m:>3}x{k:>3}x{n:>3}: reference {ref_ms:.2} ms, packed {packed_ms:.2} ms ({speedup:.2}x)");
        shape_rows.push(format!(
            "      {{ \"name\": \"{name}\", \"m\": {m}, \"k\": {k}, \"n\": {n}, \"reference_ms\": {ref_ms:.3}, \"packed_ms\": {packed_ms:.3}, \"speedup\": {speedup:.2} }}"
        ));
    }
    let gemm_geomean = (log_sum / GEMM_SHAPES.len() as f64).exp();
    println!("  geometric-mean speedup: {gemm_geomean:.2}x (target: >= 2x)");

    // Full conv training step (forward + backward) on a mid-network
    // layer, scratch reused for both kernels so the kernel is the only
    // variable.
    let (cn, cin, chw, cout, ck) = (8, 16, 16, 16, 3);
    let x = Tensor::randn(&[cn, cin, chw, chw], 1.0, &mut rng);
    let w = Tensor::he_normal(&[cout, cin, ck, ck], cin * ck * ck, &mut rng);
    let geom = ConvGeom::same(ck, 1);
    let dout = Tensor::randn(&[cn, cout, chw, chw], 1.0, &mut rng);
    let conv_step = |kind: KernelKind| {
        set_kernel(kind);
        let mut scratch = Scratch::new();
        bench_ms(iters.div_ceil(4), || {
            let (y, cols) = conv2d_forward_scratch(&x, &w, geom, false, &mut scratch);
            let (dx, dw) = conv2d_backward_scratch(&x, &w, geom, &cols, &dout, &mut scratch);
            scratch.give(cols);
            std::hint::black_box((y, dx, dw));
        })
    };
    let conv_ref_ms = conv_step(KernelKind::Reference);
    let conv_packed_ms = conv_step(KernelKind::Packed);
    let conv_speedup = conv_ref_ms / conv_packed_ms;
    println!(
        "conv2d fwd+bwd [{cn},{cin},{chw},{chw}] -> {cout}ch {ck}x{ck}: reference {conv_ref_ms:.1} ms, packed {conv_packed_ms:.1} ms ({conv_speedup:.2}x)"
    );
    set_kernel(KernelKind::Packed);

    // Incremental GP appends vs full refactorization per chunk, frozen
    // hyper-parameters on both sides (apples to apples).
    let (n0, n_final, chunk, dims) = (500usize, 2000usize, 50usize, 16usize);
    println!("gp: append chunks of {chunk} from n={n0} to n={n_final} ({dims}-dim features)");
    let xs: Vec<Vec<f64>> = (0..n_final)
        .map(|_| (0..dims).map(|_| rng.random_range(-2.0..2.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().map(|v| v.sin()).sum::<f64>() + 0.25 * x[0] * x[1])
        .collect();
    let make = || GaussianProcess::with_hyperparams(2.0, 1e-2).with_max_train(n_final);

    let mut inc = make();
    inc.fit(&xs[..n0], &ys[..n0])?;
    let incremental_ms = time_ms(|| {
        let mut start = n0;
        while start < n_final {
            let end = (start + chunk).min(n_final);
            inc.append(&xs[start..end], &ys[start..end])
                .expect("append");
            start = end;
        }
    });

    let mut full = make();
    let refit_ms = time_ms(|| {
        let mut end = n0 + chunk;
        while end <= n_final {
            full.fit(&xs[..end], &ys[..end]).expect("refit");
            end += chunk;
        }
    });
    let gp_speedup = refit_ms / incremental_ms;

    // The incremental factor must agree with a from-scratch
    // refactorization of the very same state (frozen standardizers and
    // hyper-parameters). The timing baseline above re-fits its
    // standardizers each chunk, so it is a (slightly) different model —
    // correct for timing, wrong for an equality probe.
    let mut refit_check = inc.clone();
    refit_check.refit().expect("refit");
    let probe: Vec<Vec<f64>> = (0..64)
        .map(|_| (0..dims).map(|_| rng.random_range(-2.0..2.0)).collect())
        .collect();
    let pa = inc.predict_batch_with_variance(&probe);
    let pb = refit_check.predict_batch_with_variance(&probe);
    let max_diff = pa
        .iter()
        .zip(&pb)
        .map(|(&(ma, _), &(mb, _))| (ma - mb).abs())
        .fold(0.0f64, f64::max);
    println!(
        "  refit-per-chunk {refit_ms:.0} ms, incremental {incremental_ms:.0} ms ({gp_speedup:.2}x, target >= 5x), max mean diff {max_diff:.2e}"
    );

    let meta = bench_meta_json(2);
    let json = format!(
        "{{\n  \"bench\": \"compute kernels\",\n  {meta},\n  \"gemm\": {{\n    \"threads\": 1,\n    \"iters\": {iters},\n    \"shapes\": [\n{}\n    ],\n    \"geomean_speedup\": {gemm_geomean:.2}\n  }},\n  \"conv2d_step\": {{\n    \"input\": [{cn}, {cin}, {chw}, {chw}],\n    \"cout\": {cout},\n    \"kernel\": {ck},\n    \"reference_ms\": {conv_ref_ms:.2},\n    \"packed_ms\": {conv_packed_ms:.2},\n    \"speedup\": {conv_speedup:.2}\n  }},\n  \"gp_incremental\": {{\n    \"initial\": {n0},\n    \"final\": {n_final},\n    \"chunk\": {chunk},\n    \"dims\": {dims},\n    \"refit_per_chunk_ms\": {refit_ms:.1},\n    \"incremental_ms\": {incremental_ms:.1},\n    \"speedup\": {gp_speedup:.2},\n    \"max_mean_abs_diff\": {max_diff:.3e}\n  }}\n}}\n",
        shape_rows.join(",\n")
    );
    std::fs::write(&out, json)?;
    println!("written {out}");

    assert!(
        gemm_geomean >= 2.0,
        "gemm geomean speedup {gemm_geomean:.2}x below the 2x target"
    );
    assert!(
        conv_speedup >= 2.0,
        "conv step speedup {conv_speedup:.2}x below the 2x target"
    );
    assert!(
        gp_speedup >= 5.0,
        "gp incremental speedup {gp_speedup:.2}x below the 5x target"
    );
    assert!(
        max_diff < 1e-8,
        "incremental and refit GPs diverged: {max_diff:.3e}"
    );
    Ok(())
}
