//! **Table 2 / Fig. 7 data**: single-stage YOSO vs the two-stage method.
//!
//! Two-stage rows: six representative accuracy-first networks (stand-ins
//! for NasNet-A, DARTS v1/v2, AmoebaNet-A, ENAS, PNAS — see DESIGN.md),
//! each paired with the best accelerator configuration found by
//! exhaustively enumerating the hardware space under the constraints.
//!
//! YOSO rows: the single-stage RL search in the joint space with the fast
//! evaluator, followed by top-N accurate reranking — run twice, once with
//! the latency-leaning reward (`Yoso_lat`) and once with the
//! energy-leaning reward (`Yoso_eer`).
//!
//! Usage: `cargo run --release -p yoso-bench --bin table2_comparison --
//!   [--iterations 600] [--topn 5] [--hyper-epochs 6] [--full-epochs 6]
//!   [--seed 0] [--threads 0] [--surrogate exact|sparse]
//!   [--pareto-out front.csv]`
//!
//! `--threads 0` (default) uses all cores for sampling, hardware
//! enumeration and reranking. `--surrogate sparse` builds the fast
//! evaluator on the inducing-point sparse GPs instead of the exact
//! ones; `--pareto-out` writes the last YOSO run's non-dominated
//! archive to the given CSV path.

use std::time::Instant;
use yoso_accel::Simulator;
use yoso_arch::{DesignPoint, Genotype, NetworkSkeleton};
use yoso_bench::{run_main, write_csv, Args, Table};
use yoso_core::error::Error;
use yoso_core::evaluation::{calibrate_constraints, FastEvaluator};
use yoso_core::parallel_map;
use yoso_core::reward::RewardConfig;
use yoso_core::search::SearchConfig;
use yoso_core::session::{SearchSession, Strategy};
use yoso_core::twostage::{best_hw_for, reference_models, OptimizationTarget};
use yoso_dataset::{SynthCifar, SynthCifarConfig};
use yoso_hypernet::HyperTrainConfig;
use yoso_nn::{CellNetwork, TrainConfig};

struct Row {
    name: String,
    search_cost: String,
    test_error_pct: f64,
    energy_mj: f64,
    latency_ms: f64,
    config: String,
}

fn train_full(
    skeleton: &NetworkSkeleton,
    data: &SynthCifar,
    genotype: &Genotype,
    epochs: usize,
    seed: u64,
) -> f64 {
    let plan = skeleton.compile(genotype);
    let mut net = CellNetwork::new(plan, seed);
    let cfg = TrainConfig {
        epochs,
        batch_size: 32,
        seed,
        ..Default::default()
    };
    let hist = net.train(data, &cfg);
    hist.final_test_acc
}

fn main() {
    run_main(real_main);
}

fn real_main() -> Result<(), Error> {
    let args = Args::parse();
    let iterations = args.usize("--iterations", 600);
    let top_n = args.usize("--topn", 5);
    let hyper_epochs = args.usize("--hyper-epochs", 6);
    let full_epochs = args.usize("--full-epochs", 6);
    let seed = args.u64("--seed", 0);
    println!("worker pool: {} threads", args.configure_threads());
    let trace = args.configure_trace();
    args.configure_chaos();

    let skeleton = NetworkSkeleton::small();
    let data = SynthCifar::generate(&SynthCifarConfig::small());
    let sim = Simulator::exact();
    let constraints = calibrate_constraints(&skeleton, 400, seed, 40.0);
    println!(
        "constraints: t_lat {:.4} ms, t_eer {:.4} mJ (40th pct of random designs; paper used 1.2 ms / 9 mJ at CIFAR scale)",
        constraints.t_lat_ms, constraints.t_eer_mj
    );

    // ---- two-stage baselines -------------------------------------------
    println!("\n[two-stage] full-training the six reference networks ...");
    let models = reference_models();
    let t0 = Instant::now();
    let accs: Vec<f64> = parallel_map(models.len(), models.len(), |i| {
        train_full(
            &skeleton,
            &data,
            &models[i].genotype,
            full_epochs,
            seed + i as u64,
        )
    });
    println!("  trained in {:.1?}", t0.elapsed());
    let mut rows: Vec<Row> = Vec::new();
    for (m, &acc) in models.iter().zip(&accs) {
        // Stage 2: enumerate all hardware for the fixed network. The
        // paper picks the best configuration per network; we optimize the
        // composite objective's dominant metric (energy, matching the
        // ordering used in Table 2's energy column).
        let best = best_hw_for(
            &m.genotype,
            &skeleton,
            &sim,
            &constraints,
            OptimizationTarget::Energy,
        );
        rows.push(Row {
            name: m.name.to_string(),
            search_cost: format!("{} (orig.)", m.search_cost_gpu_days),
            test_error_pct: (1.0 - acc) * 100.0,
            energy_mj: best.report.energy_mj,
            latency_ms: best.report.latency_ms,
            config: best.hw.to_string(),
        });
    }

    // ---- YOSO single-stage runs ----------------------------------------
    let surrogate = args.surrogate()?;
    println!(
        "\n[yoso] building fast evaluator (HyperNet {hyper_epochs} epochs + {surrogate} GP) ..."
    );
    let t1 = Instant::now();
    let hyper_cfg = HyperTrainConfig {
        epochs: hyper_epochs,
        batch_size: 32,
        seed,
        ..Default::default()
    };
    let fast =
        FastEvaluator::build_with_surrogate(&skeleton, &data, &hyper_cfg, 500, seed, surrogate)?;
    println!("  built in {:.1?}", t1.elapsed());

    let mut last_outcome = None;
    for (label, reward_cfg) in [
        ("Yoso_lat", RewardConfig::latency_focused(constraints)),
        ("Yoso_eer", RewardConfig::energy_focused(constraints)),
    ] {
        println!("\n[yoso] {label}: RL search ({iterations} iterations) + top-{top_n} rerank ...");
        let t2 = Instant::now();
        let outcome = SearchSession::builder()
            .evaluator(&fast)
            .reward(reward_cfg)
            .config(SearchConfig {
                iterations,
                rollouts_per_update: 10,
                seed,
                ..SearchConfig::default()
            })
            .strategy(Strategy::Rl)
            .trace(trace.clone())
            .run()?;
        // Accurate rerank: full training + exact simulation per finalist.
        let finalists = outcome.top_n(top_n);
        let reranked: Vec<(DesignPoint, f64, f64, f64, f64)> =
            parallel_map(finalists.len(), finalists.len(), |i| {
                let point = finalists[i].point;
                let acc = train_full(&skeleton, &data, &point.genotype, full_epochs, seed ^ 0xF1);
                let plan = skeleton.compile(&point.genotype);
                let rep = sim.simulate_plan(&plan, &point.hw);
                let reward = reward_cfg.reward(acc, rep.latency_ms, rep.energy_mj);
                (point, acc, rep.latency_ms, rep.energy_mj, reward)
            });
        let champ = reranked
            .iter()
            .max_by(|a, b| a.4.total_cmp(&b.4))
            .expect("finalists present");
        let minutes = (t1.elapsed().as_secs_f64() + t2.elapsed().as_secs_f64()) / 60.0;
        println!(
            "  done in {:.1?} (champion reward {:.4})",
            t2.elapsed(),
            champ.4
        );
        rows.push(Row {
            name: label.to_string(),
            search_cost: format!("{minutes:.1} min"),
            test_error_pct: (1.0 - champ.1) * 100.0,
            energy_mj: champ.3,
            latency_ms: champ.2,
            config: champ.0.hw.to_string(),
        });
        last_outcome = Some(outcome);
    }

    if let Some(path) = args.pareto_out() {
        let outcome = last_outcome.as_ref().expect("yoso runs executed");
        yoso_core::analysis::save_pareto_csv(outcome, &path)?;
        println!(
            "pareto archive ({} entries) written to {}",
            outcome.pareto().len(),
            path.display()
        );
    }

    // ---- Table 2 ---------------------------------------------------------
    println!("\n=== Table 2: performance comparison ===");
    let mut table = Table::new(&[
        "Model",
        "SearchCost",
        "TestError(%)",
        "Energy(mJ)",
        "Latency(ms)",
        "Configuration",
    ]);
    let mut csv = Vec::new();
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            r.search_cost.clone(),
            format!("{:.2}", r.test_error_pct),
            format!("{:.4}", r.energy_mj),
            format!("{:.4}", r.latency_ms),
            r.config.clone(),
        ]);
        csv.push(vec![
            r.name.clone(),
            r.search_cost.clone(),
            r.test_error_pct.to_string(),
            r.energy_mj.to_string(),
            r.latency_ms.to_string(),
            r.config.clone(),
        ]);
    }
    println!("{table}");
    let p = write_csv(
        "table2.csv",
        &[
            "model",
            "search_cost",
            "test_error_pct",
            "energy_mj",
            "latency_ms",
            "config",
        ],
        &csv,
    );
    println!("written {}", p.display());

    // ---- headline ratios (the 1.42x–2.29x / 1.79x–3.07x claims) ----------
    let yoso_eer = rows.iter().find(|r| r.name == "Yoso_eer").expect("row");
    let yoso_lat = rows.iter().find(|r| r.name == "Yoso_lat").expect("row");
    let two_stage: Vec<&Row> = rows
        .iter()
        .filter(|r| !r.name.starts_with("Yoso"))
        .collect();
    let e_ratios: Vec<f64> = two_stage
        .iter()
        .map(|r| r.energy_mj / yoso_eer.energy_mj)
        .collect();
    let l_ratios: Vec<f64> = two_stage
        .iter()
        .map(|r| r.latency_ms / yoso_lat.latency_ms)
        .collect();
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let max = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "energy reduction vs two-stage: {:.2}x – {:.2}x   (paper: 1.42x – 2.29x)",
        min(&e_ratios),
        max(&e_ratios)
    );
    println!(
        "latency reduction vs two-stage: {:.2}x – {:.2}x  (paper: 1.79x – 3.07x)",
        min(&l_ratios),
        max(&l_ratios)
    );
    println!("{}", yoso_accel::cache::stats());
    yoso_bench::finish_trace(&trace);
    Ok(())
}
