//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. **Uniform vs biased HyperNet path sampling** (paper §III-D claims
//!    uniform sampling is vital for ranking fidelity).
//! 2. **Reward-form ambiguity** — weighted-product vs additive Eq. 2.
//! 3. **GP training-set-size curve** — predictor error vs sample budget.
//! 4. **RL vs random under equal budgets, multiple seeds.**
//! 5. **Hardware parameter isolation** — the marginal effect of each of
//!    the four searched parameters.
//! 6. **Fixed vs flexible dataflow** — how much a per-layer-reconfigurable
//!    array (an extension beyond the paper's template) would close the
//!    dataflow gap.
//!
//! Usage: `cargo run --release -p yoso-bench --bin ablations --
//!   [--which 1,2,3,4,5,6] [--threads 0] [--surrogate exact|sparse]
//!   [--pareto-out front.csv]`
//!
//! `--surrogate sparse` runs ablation 3's budget curve on the
//! inducing-point sparse GP backend instead of the exact one;
//! `--pareto-out` writes the non-dominated archive of the last search
//! ablation run (2 or 4) to the given CSV path.

use rand::rngs::StdRng;
use rand::SeedableRng;
use yoso_accel::Simulator;
use yoso_arch::{Dataflow, Genotype, HwConfig, NetworkSkeleton, PeArray};
use yoso_bench::{run_main, Args, Table};
use yoso_core::error::Error;
use yoso_core::evaluation::{calibrate_constraints, SurrogateEvaluator};
use yoso_core::reward::{RewardConfig, RewardForm};
use yoso_core::search::SearchConfig;
use yoso_core::session::{SearchSession, Strategy};
use yoso_dataset::{SynthCifar, SynthCifarConfig};
use yoso_hypernet::{HyperNet, HyperTrainConfig};
use yoso_nn::{CellNetwork, TrainConfig};
use yoso_predictor::metrics::{mape, spearman};
use yoso_predictor::perf::{collect_samples, PerfPredictor};

fn wants(which: &str, id: char) -> bool {
    which.contains(id)
}

fn main() {
    run_main(real_main);
}

fn real_main() -> Result<(), Error> {
    let args = Args::parse();
    println!("worker pool: {} threads", args.configure_threads());
    let trace = args.configure_trace();
    args.configure_chaos();
    let which = args.value("--which").unwrap_or_else(|| "123456".into());

    let mut last_outcome = None;
    if wants(&which, '1') {
        ablation_sampling();
    }
    if wants(&which, '2') {
        last_outcome = Some(ablation_reward_form()?);
    }
    if wants(&which, '3') {
        ablation_gp_budget(args.surrogate()?)?;
    }
    if wants(&which, '4') {
        last_outcome = Some(ablation_rl_seeds()?);
    }
    if wants(&which, '5') {
        ablation_hw_isolation();
    }
    if wants(&which, '6') {
        ablation_flexible_dataflow();
    }
    if let Some(path) = args.pareto_out() {
        let out = last_outcome.as_ref().ok_or_else(|| {
            Error::InvalidConfig("--pareto-out needs a search ablation (2 or 4) in --which".into())
        })?;
        yoso_core::analysis::save_pareto_csv(out, &path)?;
        println!(
            "pareto archive ({} entries) written to {}",
            out.pareto().len(),
            path.display()
        );
    }
    yoso_bench::finish_trace(&trace);
    Ok(())
}

/// 1. Uniform vs biased path sampling: which HyperNet ranks sub-models
///    closer to their fully-trained order?
fn ablation_sampling() {
    println!("=== Ablation 1: uniform vs biased HyperNet sampling ===");
    let skeleton = NetworkSkeleton::tiny();
    // Hard-mode data so fully-trained accuracies spread (see the Fig. 5(b)
    // notes in EXPERIMENTS.md: saturated tasks cannot be ranked).
    let mut data_cfg = SynthCifarConfig::tiny();
    data_cfg.noise = 0.42;
    data_cfg.label_noise = 0.05;
    let data = SynthCifar::generate(&data_cfg);
    let probes: Vec<Genotype> = {
        let mut rng = StdRng::seed_from_u64(99);
        (0..10).map(|_| Genotype::random(&mut rng)).collect()
    };
    // Ground truth: standalone training of each probe.
    let truth: Vec<f64> = probes
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let mut net = CellNetwork::new(skeleton.compile(g), i as u64);
            let cfg = TrainConfig {
                epochs: 8,
                batch_size: 32,
                seed: i as u64,
                ..Default::default()
            };
            net.train(&data, &cfg).final_val_acc
        })
        .collect();
    for (label, uniform) in [("uniform", true), ("biased(single-path)", false)] {
        let mut hyper = HyperNet::new(skeleton.clone(), 0);
        let cfg = HyperTrainConfig {
            epochs: 400,
            batch_size: 32,
            uniform_sampling: uniform,
            ..Default::default()
        };
        hyper.train(&data, &cfg);
        let inherited: Vec<f64> = probes
            .iter()
            .map(|g| hyper.evaluate_genotype(g, &data.val, 64))
            .collect();
        println!(
            "  {label:>20}: spearman(inherited, fully-trained) = {:.3}",
            spearman(&inherited, &truth)
        );
    }
    println!(
        "  (the paper argues biased sampling confuses the ranking; NOTE: with\n   ~10 probes a Spearman estimate has a null std of ~0.33, so CPU-scale\n   runs of this ablation are statistically underpowered — raise the\n   probe count and supernet epochs for a conclusive comparison)\n"
    );
}

/// 2. Eq. 2 reading: weighted product vs additive. Returns the last
///    form's outcome so `--pareto-out` has an archive to persist.
fn ablation_reward_form() -> Result<yoso_core::SearchOutcome, Error> {
    println!("=== Ablation 2: reward form (Eq. 2 ambiguity) ===");
    let sk = NetworkSkeleton::paper_default();
    let ev = SurrogateEvaluator::new(sk.clone());
    let cons = calibrate_constraints(&sk, 200, 0, 40.0);
    let cfg = SearchConfig {
        iterations: 800,
        rollouts_per_update: 10,
        seed: 0,
        ..SearchConfig::default()
    };
    let mut table = Table::new(&["form", "best_acc", "best_lat(ms)", "best_eer(mJ)"]);
    let mut last = None;
    for form in [RewardForm::WeightedProduct, RewardForm::Additive] {
        let mut rc = RewardConfig::balanced(cons);
        rc.form = form;
        let out = SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .config(cfg.clone())
            .strategy(Strategy::Rl)
            .run()?;
        let b = out.best();
        table.row(vec![
            format!("{form:?}"),
            format!("{:.3}", b.eval.accuracy),
            format!("{:.4}", b.eval.latency_ms),
            format!("{:.4}", b.eval.energy_mj),
        ]);
        last = Some(out);
    }
    println!("{table}");
    println!("  (both forms steer toward the same region; the product form\n   couples accuracy and hardware terms more tightly)\n");
    Ok(last.expect("at least one form ran"))
}

/// 3. GP predictor error vs training-sample budget, on the surrogate
///    backend picked by `--surrogate`.
fn ablation_gp_budget(surrogate: yoso_core::SurrogateKind) -> Result<(), Error> {
    println!("=== Ablation 3: {surrogate} GP error vs training-set size ===");
    let sk = NetworkSkeleton::paper_default();
    let sim = Simulator::exact();
    let test = collect_samples(&sk, &sim, 200, 999);
    let mut table = Table::new(&["samples", "latency MAPE%", "energy MAPE%"]);
    for n in [50usize, 100, 200, 400, 800] {
        let train = collect_samples(&sk, &sim, n, 7);
        let pred = PerfPredictor::train_with(&sk, &train, surrogate)?;
        let mut pl = Vec::new();
        let mut pe = Vec::new();
        let mut tl = Vec::new();
        let mut te = Vec::new();
        for s in &test {
            let (l, e) = pred.predict(&s.point);
            pl.push(l);
            pe.push(e);
            tl.push(s.latency_ms);
            te.push(s.energy_mj);
        }
        table.row(vec![
            n.to_string(),
            format!("{:.2}", mape(&pl, &tl) * 100.0),
            format!("{:.2}", mape(&pe, &te) * 100.0),
        ]);
    }
    println!("{table}");
    println!("  (paper: <4% accuracy loss at 3000 samples)\n");
    Ok(())
}

/// 4. RL vs regularized evolution vs random, multiple seeds. Returns
///    the last seed's RL outcome so `--pareto-out` has an archive.
fn ablation_rl_seeds() -> Result<yoso_core::SearchOutcome, Error> {
    println!("=== Ablation 4: RL vs evolution vs random across seeds ===");
    let sk = NetworkSkeleton::paper_default();
    let ev = SurrogateEvaluator::new(sk.clone());
    let cons = calibrate_constraints(&sk, 200, 0, 40.0);
    let rc = RewardConfig::balanced(cons);
    let mut table = Table::new(&[
        "seed",
        "rl_best",
        "evo_best",
        "random_best",
        "rl_tail",
        "evo_tail",
        "random_tail",
    ]);
    let mut rl_wins = 0;
    let mut last_rl = None;
    for seed in 0..5u64 {
        let cfg = SearchConfig {
            iterations: 600,
            rollouts_per_update: 10,
            seed,
            ..SearchConfig::default()
        };
        let search = |strategy| {
            SearchSession::builder()
                .evaluator(&ev)
                .reward(rc)
                .config(cfg.clone())
                .strategy(strategy)
                .run()
        };
        let rl = search(Strategy::Rl)?;
        let evo = search(Strategy::Evolution)?;
        let rnd = search(Strategy::Random)?;
        let tail = |o: &yoso_core::SearchOutcome| {
            let k = o.history.len() / 4;
            o.history[o.history.len() - k..]
                .iter()
                .map(|r| r.reward)
                .sum::<f64>()
                / k as f64
        };
        if tail(&rl) > tail(&rnd) {
            rl_wins += 1;
        }
        table.row(vec![
            seed.to_string(),
            format!("{:.4}", rl.best().reward),
            format!("{:.4}", evo.best().reward),
            format!("{:.4}", rnd.best().reward),
            format!("{:.4}", tail(&rl)),
            format!("{:.4}", tail(&evo)),
            format!("{:.4}", tail(&rnd)),
        ]);
        last_rl = Some(rl);
    }
    println!("{table}");
    println!("  RL tail-mean beats random in {rl_wins}/5 seeds\n");
    Ok(last_rl.expect("at least one seed ran"))
}

/// 5. Marginal effect of each hardware parameter on a fixed network.
fn ablation_hw_isolation() {
    println!("=== Ablation 5: hardware parameter isolation ===");
    // A wide, conv5-heavy star genotype maximizes weights and activations
    // so that buffer capacities actually bind at CPU scale.
    let mut sk = NetworkSkeleton::paper_default();
    sk.init_channels = 24;
    use yoso_arch::{CellGenotype, NodeGene, Op};
    let star = CellGenotype {
        nodes: [NodeGene {
            in1: 0,
            op1: Op::Conv5,
            in2: 1,
            op2: Op::Conv5,
        }; 5],
    };
    let plan = sk.compile(&Genotype {
        normal: star,
        reduction: star,
    });
    let sim = Simulator::exact();
    let base = HwConfig {
        pe: PeArray { rows: 16, cols: 16 },
        gbuf_kb: 256,
        rbuf_bytes: 256,
        dataflow: Dataflow::Ws,
    };
    let mut table = Table::new(&["variant", "energy(mJ)", "latency(ms)", "dram(words)"]);
    let mut push = |label: String, hw: HwConfig| {
        let r = sim.simulate_plan(&plan, &hw);
        table.row(vec![
            label,
            format!("{:.4}", r.energy_mj),
            format!("{:.4}", r.latency_ms),
            format!("{:.0}", r.dram_words),
        ]);
    };
    push("base 16*16/256KB/256b/WS".into(), base);
    push(
        "PE -> 8*8".into(),
        HwConfig {
            pe: PeArray { rows: 8, cols: 8 },
            ..base
        },
    );
    push(
        "PE -> 16*32".into(),
        HwConfig {
            pe: PeArray { rows: 16, cols: 32 },
            ..base
        },
    );
    push(
        "gbuf -> 108KB".into(),
        HwConfig {
            gbuf_kb: 108,
            ..base
        },
    );
    push(
        "gbuf -> 1024KB".into(),
        HwConfig {
            gbuf_kb: 1024,
            ..base
        },
    );
    push(
        "rbuf -> 64b".into(),
        HwConfig {
            rbuf_bytes: 64,
            ..base
        },
    );
    push(
        "rbuf -> 1024b".into(),
        HwConfig {
            rbuf_bytes: 1024,
            ..base
        },
    );
    for df in Dataflow::ALL {
        push(
            format!("dataflow -> {df}"),
            HwConfig {
                dataflow: df,
                ..base
            },
        );
    }
    println!("{table}");
}

/// 6. Fixed vs per-layer flexible dataflow (extension study).
fn ablation_flexible_dataflow() {
    println!("=== Ablation 6: fixed vs flexible dataflow ===");
    let sk = NetworkSkeleton::paper_default();
    let sim = Simulator::exact();
    let mut rng = StdRng::seed_from_u64(17);
    let mut table = Table::new(&["network", "best fixed (mJ)", "flexible (mJ)", "gain%"]);
    for i in 0..4 {
        let plan = sk.compile(&Genotype::random(&mut rng));
        let base = HwConfig {
            pe: PeArray { rows: 16, cols: 16 },
            gbuf_kb: 256,
            rbuf_bytes: 256,
            dataflow: Dataflow::Ws,
        };
        let best_fixed = Dataflow::ALL
            .iter()
            .map(|&df| {
                sim.simulate_plan(
                    &plan,
                    &HwConfig {
                        dataflow: df,
                        ..base
                    },
                )
                .energy_mj
            })
            .fold(f64::INFINITY, f64::min);
        let flex = sim.simulate_plan_flexible(&plan, &base).energy_mj;
        table.row(vec![
            format!("random#{i}"),
            format!("{best_fixed:.4}"),
            format!("{flex:.4}"),
            format!("{:.1}", (1.0 - flex / best_fixed) * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "  (a gain of ~0% means one dataflow dominates every layer of that\n   network under this cost model — reconfigurability pays off only on\n   mixed conv/dwconv layer diets)\n"
    );
}
