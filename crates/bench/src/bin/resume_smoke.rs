//! Crash-recovery smoke test: proves that a search killed mid-run and
//! resumed from its newest on-disk checkpoint replays a bit-identical
//! `search_iter` JSONL trace and reaches the same final outcome as the
//! uninterrupted run.
//!
//! The drill, per worker-thread count:
//!
//! 1. run the full search (default 30 iterations) with a checkpoint
//!    cadence at the kill point (default 15);
//! 2. simulate a SIGKILL — drop every in-memory object, keeping only the
//!    `ckpt_<kill>.snap` file;
//! 3. [`SearchSession::resume_from`] that file and run to completion;
//! 4. diff the resumed `search_iter` lines against the tail of the full
//!    run's trace, byte for byte, and compare the final outcomes.
//!
//! Exits non-zero (with the full error chain on stderr) on any
//! divergence, so CI can gate on it.
//!
//! Usage: `cargo run --release -p yoso-bench --bin resume_smoke --
//!   [--iterations 30] [--kill-at 15] [--seed 0] [--scoring f32|int8]
//!   [--chaos-plan <path>]`
//!
//! With `--scoring int8` the drill swaps the deterministic surrogate for
//! a real [`FastEvaluator`] (briefly trained HyperNet on tiny synthetic
//! data) scoring candidates on the quantized int8 path, proving that
//! byte-identical resume holds for integer-GEMM accuracy numbers too.
//!
//! With `--chaos-plan` the whole drill runs under an armed fault plan.
//! Only *transient* faults (worker panics, slow evaluations) keep the
//! byte-identity contract — the supervised pool retries them away — so
//! that is what the CI soak plan injects. Quarantining faults (NaN
//! rewards, simulator NaNs) change which candidates survive and belong
//! in the `chaos_resilience` integration test instead.

use std::path::PathBuf;
use yoso_bench::{run_main, Args};
use yoso_core::checkpoint::checkpoint_file_name;
use yoso_core::error::Error;
use yoso_core::evaluation::{
    calibrate_constraints, Evaluator, FastEvaluator, ScoringPrecision, SurrogateEvaluator,
};
use yoso_core::reward::RewardConfig;
use yoso_core::search::SearchConfig;
use yoso_core::session::{SearchSession, Strategy};
use yoso_dataset::{SynthCifar, SynthCifarConfig};
use yoso_hypernet::HyperTrainConfig;
use yoso_trace::Trace;

fn search_iter_lines(trace: &Trace) -> Vec<String> {
    trace
        .lines()
        .into_iter()
        .filter(|l| l.contains("\"search_iter\""))
        .collect()
}

fn main() {
    run_main(real_main);
}

fn real_main() -> Result<(), Error> {
    let args = Args::parse();
    let iterations = args.usize("--iterations", 30);
    let kill_at = args.usize("--kill-at", 15);
    let seed = args.u64("--seed", 0);
    let scoring = args.scoring()?;
    args.configure_chaos();
    let skeleton = yoso_arch::NetworkSkeleton::tiny();
    // f32 drills score with the cheap deterministic surrogate; the int8
    // drill needs a real HyperNet so the quantized conv path is what
    // actually produces the replayed accuracy numbers.
    let (surrogate, fast);
    let evaluator: &dyn Evaluator = if scoring == ScoringPrecision::Int8 {
        let data = SynthCifar::generate(&SynthCifarConfig::tiny());
        let hyper_cfg = HyperTrainConfig {
            epochs: 1,
            batch_size: 32,
            augment: false,
            ..Default::default()
        };
        fast = FastEvaluator::build(&skeleton, &data, &hyper_cfg, 60, seed)?;
        println!("scoring: int8 (FastEvaluator, quantized conv path)");
        &fast
    } else {
        surrogate = SurrogateEvaluator::new(skeleton.clone());
        &surrogate
    };
    let reward = RewardConfig::balanced(calibrate_constraints(&skeleton, 50, seed, 50.0));
    let cfg = SearchConfig {
        iterations,
        rollouts_per_update: 5,
        seed,
        ..SearchConfig::default()
    };

    for threads in [1usize, 4] {
        yoso_pool::set_num_threads(threads);
        println!("--- {threads} worker thread(s) ---");
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "yoso-resume-smoke-{}-t{threads}",
            std::process::id()
        ));

        let full_trace = Trace::memory();
        let full = SearchSession::builder()
            .evaluator(evaluator)
            .reward(reward)
            .config(cfg.clone())
            .strategy(Strategy::Rl)
            .scoring_precision(scoring)
            .checkpoint_every(kill_at)
            .checkpoint_dir(&dir)
            .trace(full_trace.clone())
            .run()?;
        println!(
            "full run: {} iterations, best reward {:.4}",
            full.history.len(),
            full.best().reward
        );

        // Simulated SIGKILL at `kill_at`: only the snapshot survives.
        let ckpt = dir.join(checkpoint_file_name(kill_at));
        if !ckpt.exists() {
            return Err(Error::InvalidConfig(format!(
                "expected checkpoint {} was never written — pick --kill-at on a \
                 controller-update boundary (multiple of rollouts_per_update)",
                ckpt.display()
            )));
        }
        let resumed_trace = Trace::memory();
        let resumed = SearchSession::resume_from(&ckpt)?
            .evaluator(evaluator)
            .trace(resumed_trace.clone())
            .run()?;
        println!(
            "resumed run: {} iterations, best reward {:.4}",
            resumed.history.len(),
            resumed.best().reward
        );

        let full_lines = search_iter_lines(&full_trace);
        let resumed_lines = search_iter_lines(&resumed_trace);
        let tail = &full_lines[full_lines.len() - resumed_lines.len()..];
        for (i, (a, b)) in tail.iter().zip(&resumed_lines).enumerate() {
            if a != b {
                return Err(Error::ResumeMismatch {
                    expected: format!("search_iter line {i} of the uninterrupted tail: {a}"),
                    found: format!("resumed run emitted: {b}"),
                });
            }
        }
        if resumed != full {
            return Err(Error::ResumeMismatch {
                expected: format!("the uninterrupted outcome (best {:.6})", full.best().reward),
                found: format!(
                    "a diverged resumed outcome (best {:.6})",
                    resumed.best().reward
                ),
            });
        }
        println!(
            "resume OK: {} replayed search_iter lines byte-identical, outcomes equal",
            resumed_lines.len()
        );
        std::fs::remove_dir_all(&dir)?;
    }
    yoso_pool::set_num_threads(0);
    println!("resume smoke PASSED");
    Ok(())
}
