//! **Figure 7**: energy and latency of every Table 2 design, normalized to
//! the respective column minimum (the paper normalizes "to the lowest
//! energy and latency").
//!
//! Consumes `results/table2.csv` (run `table2_comparison` first).
//!
//! Usage: `cargo run --release -p yoso-bench --bin fig7_normalized`

use yoso_bench::{read_csv, run_main, write_csv, Table};
use yoso_core::error::Error;

fn bar(v: f64, scale: f64) -> String {
    let n = ((v / scale) * 24.0).round() as usize;
    "#".repeat(n.clamp(1, 60))
}

fn main() {
    run_main(real_main);
}

fn real_main() -> Result<(), Error> {
    let trace = yoso_bench::Args::parse().configure_trace();
    let (_, rows) = match read_csv("table2.csv") {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "results/table2.csv not found — run `cargo run --release -p yoso-bench --bin table2_comparison` first"
            );
            return Err(e.into());
        }
    };
    let parsed: Vec<(String, f64, f64)> = rows
        .iter()
        .map(|r| {
            let col = |i: usize, what: &str| {
                r[i].parse::<f64>().map_err(|_| {
                    Error::InvalidConfig(format!("bad {what} value {:?} in table2.csv", r[i]))
                })
            };
            Ok((r[0].clone(), col(3, "energy")?, col(4, "latency")?))
        })
        .collect::<Result<_, Error>>()?;
    let e_min = parsed.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let l_min = parsed.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
    let max_norm = parsed
        .iter()
        .map(|r| (r.1 / e_min).max(r.2 / l_min))
        .fold(0.0f64, f64::max);

    println!("=== Fig. 7: energy & latency normalized to the column minimum ===\n");
    let mut table = Table::new(&["model", "energy(x)", "latency(x)"]);
    let mut csv = Vec::new();
    for (name, e, l) in &parsed {
        table.row(vec![
            name.clone(),
            format!("{:.2}", e / e_min),
            format!("{:.2}", l / l_min),
        ]);
        csv.push(vec![
            name.clone(),
            (e / e_min).to_string(),
            (l / l_min).to_string(),
        ]);
    }
    println!("{table}");
    for (name, e, l) in &parsed {
        println!("{name:>12} energy  | {}", bar(e / e_min, max_norm));
        println!("{:>12} latency | {}", "", bar(l / l_min, max_norm));
    }
    let p = write_csv(
        "fig7_normalized.csv",
        &["model", "energy_norm", "latency_norm"],
        &csv,
    );
    println!("\nwritten {}", p.display());

    // The winners should be YOSO designs, as in the paper's Fig. 7.
    let best_e = parsed
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("rows");
    let best_l = parsed
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("rows");
    println!("lowest energy: {} | lowest latency: {}", best_e.0, best_l.0);
    yoso_bench::finish_trace(&trace);
    Ok(())
}
