//! **Figure 7**: energy and latency of every Table 2 design, normalized to
//! the respective column minimum (the paper normalizes "to the lowest
//! energy and latency").
//!
//! Consumes `results/table2.csv` (run `table2_comparison` first).
//!
//! Usage: `cargo run --release -p yoso-bench --bin fig7_normalized`

use yoso_bench::{read_csv, write_csv, Table};

fn bar(v: f64, scale: f64) -> String {
    let n = ((v / scale) * 24.0).round() as usize;
    "#".repeat(n.clamp(1, 60))
}

fn main() {
    let trace = yoso_bench::configure_trace();
    let (_, rows) = match read_csv("table2.csv") {
        Ok(v) => v,
        Err(_) => {
            eprintln!(
                "results/table2.csv not found — run `cargo run --release -p yoso-bench --bin table2_comparison` first"
            );
            std::process::exit(1);
        }
    };
    let parsed: Vec<(String, f64, f64)> = rows
        .iter()
        .map(|r| {
            (
                r[0].clone(),
                r[3].parse::<f64>().expect("energy column"),
                r[4].parse::<f64>().expect("latency column"),
            )
        })
        .collect();
    let e_min = parsed.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let l_min = parsed.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
    let max_norm = parsed
        .iter()
        .map(|r| (r.1 / e_min).max(r.2 / l_min))
        .fold(0.0f64, f64::max);

    println!("=== Fig. 7: energy & latency normalized to the column minimum ===\n");
    let mut table = Table::new(&["model", "energy(x)", "latency(x)"]);
    let mut csv = Vec::new();
    for (name, e, l) in &parsed {
        table.row(vec![
            name.clone(),
            format!("{:.2}", e / e_min),
            format!("{:.2}", l / l_min),
        ]);
        csv.push(vec![
            name.clone(),
            (e / e_min).to_string(),
            (l / l_min).to_string(),
        ]);
    }
    println!("{table}");
    for (name, e, l) in &parsed {
        println!("{name:>12} energy  | {}", bar(e / e_min, max_norm));
        println!("{:>12} latency | {}", "", bar(l / l_min, max_norm));
    }
    let p = write_csv(
        "fig7_normalized.csv",
        &["model", "energy_norm", "latency_norm"],
        &csv,
    );
    println!("\nwritten {}", p.display());

    // The winners should be YOSO designs, as in the paper's Fig. 7.
    let best_e = parsed
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("rows");
    let best_l = parsed
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("rows");
    println!("lowest energy: {} | lowest latency: {}", best_e.0, best_l.0);
    yoso_bench::finish_trace(&trace);
}
