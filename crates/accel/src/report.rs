//! Simulation outputs: per-layer and whole-network performance reports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Energy breakdown by memory-hierarchy level (all in pJ).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC / vector arithmetic energy.
    pub compute_pj: f64,
    /// PE register-file energy.
    pub rbuf_pj: f64,
    /// Array NoC energy.
    pub noc_pj: f64,
    /// Global-buffer energy.
    pub gbuf_pj: f64,
    /// DRAM energy.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.rbuf_pj + self.noc_pj + self.gbuf_pj + self.dram_pj
    }

    /// Accumulates another breakdown.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.compute_pj += other.compute_pj;
        self.rbuf_pj += other.rbuf_pj;
        self.noc_pj += other.noc_pj;
        self.gbuf_pj += other.gbuf_pj;
        self.dram_pj += other.dram_pj;
    }
}

/// Simulation result for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name (from the [`yoso_arch::LayerSpec`]).
    pub name: String,
    /// MAC (or vector-op) count.
    pub macs: u64,
    /// Execution cycles (max of compute and memory time).
    pub cycles: f64,
    /// PE array utilization in `[0, 1]` (0 for vector-unit layers).
    pub utilization: f64,
    /// Words moved to/from DRAM.
    pub dram_words: f64,
    /// Words moved to/from the global buffer.
    pub gbuf_words: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Whether the layer's input was retained on-chip by its producer.
    pub input_onchip: bool,
}

/// Whole-network simulation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PerfReport {
    /// End-to-end inference latency in milliseconds.
    pub latency_ms: f64,
    /// End-to-end inference energy in millijoules.
    pub energy_mj: f64,
    /// MAC-weighted mean PE utilization.
    pub utilization: f64,
    /// Total DRAM traffic in words.
    pub dram_words: f64,
    /// Aggregate energy breakdown.
    pub energy_breakdown: EnergyBreakdown,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
}

impl PerfReport {
    /// Builds the aggregate report from per-layer reports.
    pub fn from_layers(layers: Vec<LayerReport>, clock_ghz: f64) -> Self {
        let mut energy_breakdown = EnergyBreakdown::default();
        let mut cycles = 0.0;
        let mut dram_words = 0.0;
        let mut util_weighted = 0.0;
        let mut mac_total = 0u64;
        for l in &layers {
            energy_breakdown.accumulate(&l.energy);
            cycles += l.cycles;
            dram_words += l.dram_words;
            util_weighted += l.utilization * l.macs as f64;
            mac_total += l.macs;
        }
        PerfReport {
            latency_ms: cycles / (clock_ghz * 1e9) * 1e3,
            energy_mj: energy_breakdown.total_pj() * 1e-9,
            utilization: if mac_total > 0 {
                util_weighted / mac_total as f64
            } else {
                0.0
            },
            dram_words,
            energy_breakdown,
            layers,
        }
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "latency {:.4} ms, energy {:.4} mJ, util {:.1}%, dram {:.0} words",
            self.latency_ms,
            self.energy_mj,
            self.utilization * 100.0,
            self.dram_words
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(macs: u64, cycles: f64, util: f64, pj: f64) -> LayerReport {
        LayerReport {
            name: "l".into(),
            macs,
            cycles,
            utilization: util,
            dram_words: 10.0,
            gbuf_words: 100.0,
            energy: EnergyBreakdown {
                compute_pj: pj,
                ..Default::default()
            },
            input_onchip: false,
        }
    }

    #[test]
    fn aggregate_sums() {
        let r = PerfReport::from_layers(
            vec![layer(100, 1000.0, 0.5, 1e6), layer(300, 3000.0, 1.0, 3e6)],
            1.0,
        );
        assert!((r.latency_ms - 4e3 / 1e9 * 1e3).abs() < 1e-12);
        assert!((r.energy_mj - 4e6 * 1e-9).abs() < 1e-12);
        assert!((r.utilization - (0.5 * 100.0 + 1.0 * 300.0) / 400.0).abs() < 1e-12);
        assert_eq!(r.dram_words, 20.0);
    }

    #[test]
    fn breakdown_total() {
        let b = EnergyBreakdown {
            compute_pj: 1.0,
            rbuf_pj: 2.0,
            noc_pj: 3.0,
            gbuf_pj: 4.0,
            dram_pj: 5.0,
        };
        assert_eq!(b.total_pj(), 15.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = PerfReport::from_layers(vec![], 0.7);
        assert_eq!(r.latency_ms, 0.0);
        assert_eq!(r.utilization, 0.0);
        assert!(!format!("{r}").is_empty());
    }
}
