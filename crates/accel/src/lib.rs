//! # yoso-accel
//!
//! Analytical systolic-array accelerator simulator — the reproduction's
//! stand-in for the paper's modified `nn_dataflow` \[21\] performance oracle.
//!
//! Given a network compiled by [`yoso_arch::NetworkSkeleton::compile`] and
//! a hardware configuration ([`yoso_arch::HwConfig`]), the simulator maps
//! each layer onto the PE array under the configured dataflow
//! (WS / OS / RS / NLR), counts operand movements through the
//! register → NoC → global buffer → DRAM hierarchy with Eyeriss-style
//! per-access energies, and searches loop tilings under the buffer
//! capacity constraint. [`Fidelity::Exact`] is the slow exhaustive oracle
//! the Gaussian-process predictor replaces; [`Fidelity::Fast`] is a greedy
//! approximation.
//!
//! ## Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use yoso_accel::Simulator;
//! use yoso_arch::{Genotype, HwConfig, NetworkSkeleton};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let plan = NetworkSkeleton::paper_default().compile(&Genotype::random(&mut rng));
//! let hw = HwConfig::random(&mut rng);
//! let report = Simulator::exact().simulate_plan(&plan, &hw);
//! assert!(report.latency_ms > 0.0 && report.energy_mj > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod report;
pub mod sim;
pub mod snapshot;

pub use cache::CacheStats;
pub use cost::CostModel;
pub use report::{EnergyBreakdown, LayerReport, PerfReport};
pub use sim::{Fidelity, Simulator};
