//! Layer-level simulation memoization.
//!
//! The same `(layer, hardware)` pairs recur constantly across the
//! pipeline: every exhaustive stage-2 sweep re-simulates one network on
//! ~10^3 configurations, predictor sample collection re-simulates shared
//! skeleton layers (stems, pools, classifiers) across thousands of
//! random points, and the RL search revisits promising regions. A layer
//! simulation is a pure function of the inputs below, so its
//! [`LayerReport`] is cached process-wide and returned bit-identically
//! on every subsequent hit — skipping the exact-fidelity exhaustive
//! tiling search, by far the hottest loop in the evaluation path.
//!
//! The cache is sharded: each shard is an independent `RwLock`-guarded
//! map selected by key hash, so concurrent pool workers rarely contend
//! on the same lock. Hits take a read lock only.
//!
//! # Key / invalidation
//!
//! A cache entry is keyed by the *complete* input of
//! [`crate::Simulator::simulate_layer`]: the [`LayerSpec`] (including
//! its name — the report echoes it), the [`HwConfig`], the
//! [`Fidelity`], both on-chip residency flags, and the full
//! [`CostModel`] quantized to its IEEE-754 bit patterns (f64 `Hash`/`Eq`
//! doesn't exist; bit equality is stricter than `==`, which only means a
//! cost model that differs in any bit — even `-0.0` vs `0.0` — misses
//! rather than aliasing). There is no other hidden input, so entries
//! never need invalidation; [`clear`] exists for tests and for bounding
//! memory, and a full shard past [`SHARD_CAPACITY`] entries is dropped
//! wholesale (crude epoch eviction) before inserting.

use crate::cost::CostModel;
use crate::report::LayerReport;
use crate::sim::Fidelity;
use parking_lot::RwLock;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use yoso_arch::{HwConfig, LayerSpec};
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};

/// Number of independent lock-sharded maps (power of two).
const SHARDS: usize = 16;

/// Entries per shard before the shard is dropped wholesale.
pub const SHARD_CAPACITY: usize = 65_536;

/// The full input of a layer simulation, quantized for hashing.
#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    layer: LayerSpec,
    hw: HwConfig,
    fidelity: Fidelity,
    input_onchip: bool,
    output_onchip: bool,
    cost_bits: [u64; 11],
}

fn cost_bits(c: &CostModel) -> [u64; 11] {
    [
        c.word_bytes.to_bits(),
        c.e_mac.to_bits(),
        c.e_rbuf.to_bits(),
        c.e_noc.to_bits(),
        c.e_gbuf.to_bits(),
        c.e_dram.to_bits(),
        c.e_vector.to_bits(),
        c.clock_ghz.to_bits(),
        c.dram_words_per_cycle.to_bits(),
        c.gbuf_words_per_cycle.to_bits(),
        c.vector_lanes.to_bits(),
    ]
}

impl Snapshot for CacheKey {
    fn snapshot(&self, w: &mut ByteWriter) {
        self.layer.snapshot(w);
        self.hw.snapshot(w);
        self.fidelity.snapshot(w);
        w.put_bool(self.input_onchip);
        w.put_bool(self.output_onchip);
        w.put_u64s(&self.cost_bits);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let layer = LayerSpec::restore(r)?;
        let hw = HwConfig::restore(r)?;
        let fidelity = crate::sim::Fidelity::restore(r)?;
        let input_onchip = r.take_bool()?;
        let output_onchip = r.take_bool()?;
        let bits = r.take_u64s()?;
        let cost_bits: [u64; 11] = bits
            .try_into()
            .map_err(|v: Vec<u64>| PersistError::Malformed(format!("cost bits: {}", v.len())))?;
        Ok(CacheKey {
            layer,
            hw,
            fidelity,
            input_onchip,
            output_onchip,
            cost_bits,
        })
    }
}

/// Hit / miss / occupancy / contention counters of the global cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the simulation.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Read-lock acquisitions that found their shard lock held.
    pub contended_reads: u64,
    /// Write-lock acquisitions that found their shard lock held.
    pub contended_writes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sim cache: {} hits / {} misses ({:.1}% hit rate), {} entries, {} contended locks",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.entries,
            self.contended_reads + self.contended_writes
        )
    }
}

/// A sharded memoization map for layer simulations. One process-global
/// instance backs [`crate::Simulator`]; independent instances exist only
/// in tests.
struct SimCache {
    shards: Vec<RwLock<HashMap<CacheKey, LayerReport>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    contended_reads: AtomicU64,
    contended_writes: AtomicU64,
}

impl SimCache {
    fn new() -> Self {
        SimCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            contended_reads: AtomicU64::new(0),
            contended_writes: AtomicU64::new(0),
        }
    }

    fn shard_of(key: &CacheKey) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }

    fn lookup_or_simulate(
        &self,
        key: CacheKey,
        simulate: impl FnOnce() -> LayerReport,
    ) -> LayerReport {
        let shard = &self.shards[Self::shard_of(&key)];
        // Fast path tries the lock first so shard contention is observable
        // (a failed try is counted, then we block as before).
        let guard = shard.try_read().unwrap_or_else(|| {
            self.contended_reads.fetch_add(1, Ordering::Relaxed);
            shard.read()
        });
        if let Some(report) = guard.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return report.clone();
        }
        drop(guard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let report = simulate();
        let mut map = shard.try_write().unwrap_or_else(|| {
            self.contended_writes.fetch_add(1, Ordering::Relaxed);
            shard.write()
        });
        if map.len() >= SHARD_CAPACITY {
            map.clear();
        }
        // A racing worker may have inserted meanwhile; both computed the
        // same pure function, so either value is identical.
        map.insert(key, report.clone());
        report
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.read().len()).sum(),
            contended_reads: self.contended_reads.load(Ordering::Relaxed),
            contended_writes: self.contended_writes.load(Ordering::Relaxed),
        }
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.contended_reads.store(0, Ordering::Relaxed);
        self.contended_writes.store(0, Ordering::Relaxed);
    }

    fn export(&self, w: &mut ByteWriter) {
        let entries: Vec<(CacheKey, LayerReport)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        w.put_usize(entries.len());
        for (key, report) in &entries {
            key.snapshot(w);
            report.snapshot(w);
        }
    }

    fn import(&self, r: &mut ByteReader<'_>) -> Result<usize, PersistError> {
        let n = r.take_usize()?;
        let mut inserted = 0;
        for _ in 0..n {
            let key = CacheKey::restore(r)?;
            let report = LayerReport::restore(r)?;
            let shard = &self.shards[Self::shard_of(&key)];
            let mut map = shard.write();
            if map.len() >= SHARD_CAPACITY {
                map.clear();
            }
            map.insert(key, report);
            inserted += 1;
        }
        Ok(inserted)
    }
}

fn global() -> &'static SimCache {
    static CACHE: OnceLock<SimCache> = OnceLock::new();
    CACHE.get_or_init(SimCache::new)
}

// ---------------------------------------------------------------------------
// Per-tenant accounting
//
// The cache itself is process-wide and cross-tenant by construction (the
// key is the complete simulation input, so identical genotypes hit no
// matter which job produced them). What a multi-tenant server additionally
// needs is *attribution*: which tenant's lookups were served from shared
// warmth. A tenant is a named set of counters; a thread opts into one via
// [`set_thread_tenant`], and every global-cache lookup made on that thread
// is then billed to it. Threads with no tag (the default — all existing
// callers) are unattributed and only appear in the aggregate [`stats`].

struct TenantCounters {
    name: String,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A cheap, cloneable handle to one tenant's hit/miss counters.
#[derive(Clone)]
pub struct TenantTag {
    counters: Arc<TenantCounters>,
}

impl TenantTag {
    /// The tenant name this tag bills lookups to.
    pub fn name(&self) -> &str {
        &self.counters.name
    }
}

impl std::fmt::Debug for TenantTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TenantTag({})", self.counters.name)
    }
}

/// One tenant's view of the shared cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant name passed to [`tenant_tag`].
    pub tenant: String,
    /// Lookups by this tenant's threads answered from the cache.
    pub hits: u64,
    /// Lookups by this tenant's threads that ran the simulation.
    pub misses: u64,
}

impl TenantStats {
    /// Fraction of this tenant's lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

fn tenant_registry() -> &'static Mutex<HashMap<String, Arc<TenantCounters>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<TenantCounters>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

thread_local! {
    static THREAD_TENANT: RefCell<Option<Arc<TenantCounters>>> = const { RefCell::new(None) };
}

/// Returns the tag for `name`, creating its counters on first use.
/// Tags for the same name share counters across all callers.
pub fn tenant_tag(name: &str) -> TenantTag {
    let mut reg = tenant_registry().lock().unwrap_or_else(|e| e.into_inner());
    let counters = reg
        .entry(name.to_string())
        .or_insert_with(|| {
            Arc::new(TenantCounters {
                name: name.to_string(),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            })
        })
        .clone();
    TenantTag { counters }
}

/// Bills subsequent global-cache lookups on *this thread* to the given
/// tenant (or to nobody with `None`). Typically bracketed around a job:
/// set before running, cleared after.
pub fn set_thread_tenant(tag: Option<&TenantTag>) {
    THREAD_TENANT.with(|t| *t.borrow_mut() = tag.map(|t| Arc::clone(&t.counters)));
}

fn record_tenant_lookup(hit: bool) {
    THREAD_TENANT.with(|t| {
        if let Some(counters) = t.borrow().as_deref() {
            let counter = if hit {
                &counters.hits
            } else {
                &counters.misses
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Per-tenant counters for every tenant registered so far, sorted by
/// name. Tenants that have not looked anything up yet report zeros.
pub fn tenant_stats() -> Vec<TenantStats> {
    let reg = tenant_registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<TenantStats> = reg
        .values()
        .map(|c| TenantStats {
            tenant: c.name.clone(),
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    out
}

/// Zeroes every tenant's counters (the registry itself is kept, so
/// outstanding [`TenantTag`]s remain valid).
pub fn reset_tenant_stats() {
    let reg = tenant_registry().lock().unwrap_or_else(|e| e.into_inner());
    for c in reg.values() {
        c.hits.store(0, Ordering::Relaxed);
        c.misses.store(0, Ordering::Relaxed);
    }
}

/// Returns the cached report for this exact simulation input, or runs
/// `simulate` and caches its result. Hits are bit-identical to what
/// `simulate` returned on the miss.
pub(crate) fn lookup_or_simulate(
    cost: &CostModel,
    fidelity: Fidelity,
    layer: &LayerSpec,
    hw: &HwConfig,
    input_onchip: bool,
    output_onchip: bool,
    simulate: impl FnOnce() -> LayerReport,
) -> LayerReport {
    let key = CacheKey {
        layer: layer.clone(),
        hw: *hw,
        fidelity,
        input_onchip,
        output_onchip,
        cost_bits: cost_bits(cost),
    };
    // Tenant attribution piggybacks on the miss closure: if `simulate`
    // ran, this lookup was a miss; otherwise it was served from cache.
    let mut missed = false;
    let report = global().lookup_or_simulate(key, || {
        missed = true;
        simulate()
    });
    record_tenant_lookup(!missed);
    report
}

/// Snapshot of the global cache counters.
pub fn stats() -> CacheStats {
    global().stats()
}

/// Empties the global cache and zeroes its counters.
pub fn clear() {
    global().clear()
}

/// Serializes every entry of the global cache (a warm-cache export for
/// session checkpoints). Entries carry their full simulation key, so an
/// import into a process with a different cost model simply adds keys
/// that are never hit.
pub fn export(w: &mut ByteWriter) {
    global().export(w)
}

/// Merges previously exported entries into the global cache, returning
/// how many were inserted. Cached values are pure functions of their
/// keys, so importing never changes what a lookup observes — it only
/// turns cold misses into hits.
///
/// # Errors
///
/// Returns [`PersistError`] when the bytes are truncated or malformed;
/// entries read before the failure remain inserted.
pub fn import(r: &mut ByteReader<'_>) -> Result<usize, PersistError> {
    global().import(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use yoso_arch::{Dataflow, LayerKind, PeArray};

    fn test_layer(name: &str, cout: usize) -> LayerSpec {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Conv {
                k: 3,
                stride: 1,
                cin: 16,
                cout,
            },
            h_in: 8,
            w_in: 8,
            h_out: 8,
            w_out: 8,
        }
    }

    fn test_hw() -> HwConfig {
        HwConfig {
            pe: PeArray { rows: 8, cols: 8 },
            gbuf_kb: 64,
            rbuf_bytes: 256,
            dataflow: Dataflow::Ws,
        }
    }

    fn key_for(sim: &Simulator, layer: &LayerSpec, hw: &HwConfig) -> CacheKey {
        CacheKey {
            layer: layer.clone(),
            hw: *hw,
            fidelity: sim.fidelity,
            input_onchip: false,
            output_onchip: false,
            cost_bits: cost_bits(&sim.cost),
        }
    }

    // Exact counter semantics are asserted on a private instance: the
    // global cache is shared with every other concurrently running test.
    #[test]
    fn instance_counts_hits_misses_entries() {
        let cache = SimCache::new();
        let sim = Simulator::exact();
        let layer = test_layer("l0", 32);
        let hw = test_hw();
        let compute = || sim.simulate_layer(&layer, &hw, false, false);
        let miss = cache.lookup_or_simulate(key_for(&sim, &layer, &hw), compute);
        let hit = cache.lookup_or_simulate(key_for(&sim, &layer, &hw), compute);
        assert_eq!(miss, hit);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn distinct_inputs_do_not_alias() {
        let cache = SimCache::new();
        let exact = Simulator::exact();
        let hw = test_hw();
        let la = test_layer("a", 32);
        let lb = test_layer("a", 48);
        let a = cache.lookup_or_simulate(key_for(&exact, &la, &hw), || {
            exact.simulate_layer(&la, &hw, false, false)
        });
        let b = cache.lookup_or_simulate(key_for(&exact, &lb, &hw), || {
            exact.simulate_layer(&lb, &hw, false, false)
        });
        assert_ne!(a, b);
        // Same layer under a different fidelity is a different key.
        let fast = Simulator::fast();
        cache.lookup_or_simulate(key_for(&fast, &la, &hw), || {
            fast.simulate_layer(&la, &hw, false, false)
        });
        assert_eq!(cache.stats().misses, 3);
        // The cost model participates in the key.
        let mut dear_dram = Simulator::exact();
        dear_dram.cost.e_dram *= 2.0;
        let c = cache.lookup_or_simulate(key_for(&dear_dram, &la, &hw), || {
            dear_dram.simulate_layer(&la, &hw, false, false)
        });
        assert!(c.energy.total_pj() > a.energy.total_pj());
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().entries, 4);
    }

    #[test]
    fn instance_clear_resets_everything() {
        let cache = SimCache::new();
        let sim = Simulator::fast();
        let layer = test_layer("x", 8);
        let hw = test_hw();
        cache.lookup_or_simulate(key_for(&sim, &layer, &hw), || {
            sim.simulate_layer(&layer, &hw, false, false)
        });
        assert_eq!(cache.stats().entries, 1);
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn capacity_overflow_drops_shard() {
        let cache = SimCache::new();
        let sim = Simulator::fast();
        let hw = test_hw();
        let layer = test_layer("cap", 8);
        let report = sim.simulate_layer(&layer, &hw, false, false);
        // Force one shard to the brink, then insert into it again.
        let key = key_for(&sim, &layer, &hw);
        let shard_idx = SimCache::shard_of(&key);
        cache.shards[shard_idx]
            .write()
            .extend((0..SHARD_CAPACITY).map(|i| {
                let mut k = key.clone();
                k.layer.name = format!("filler-{i}");
                (k, report.clone())
            }));
        cache.lookup_or_simulate(key, || report.clone());
        assert!(cache.stats().entries <= SHARD_CAPACITY);
    }

    // The global path: delta-based assertions only (other tests in this
    // binary hit the same process-wide cache concurrently, but only add).
    #[test]
    fn global_cache_serves_simulate_layers() {
        let sim = Simulator::exact();
        let layer = test_layer("global-cache-probe-layer", 24);
        let hw = test_hw();
        let before = stats();
        let miss = sim.simulate_layers(std::slice::from_ref(&layer), &hw);
        let hit = sim.simulate_layers(std::slice::from_ref(&layer), &hw);
        assert_eq!(miss, hit);
        let after = stats();
        assert!(after.misses > before.misses);
        assert!(after.hits > before.hits);
        assert!(after.entries >= 1);
    }

    #[test]
    fn export_import_roundtrips_entries() {
        let cache = SimCache::new();
        let sim = Simulator::exact();
        let hw = test_hw();
        for i in 0..4 {
            let layer = test_layer(&format!("exp-{i}"), 8 + i);
            cache.lookup_or_simulate(key_for(&sim, &layer, &hw), || {
                sim.simulate_layer(&layer, &hw, false, false)
            });
        }
        let mut w = ByteWriter::new();
        cache.export(&mut w);
        let bytes = w.into_bytes();

        let fresh = SimCache::new();
        let n = fresh.import(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(n, 4);
        assert_eq!(fresh.stats().entries, 4);
        // Every restored entry answers bit-identically to a simulation.
        let layer = test_layer("exp-2", 10);
        let hit = fresh.lookup_or_simulate(key_for(&sim, &layer, &hw), || {
            panic!("should be served from the imported cache")
        });
        assert_eq!(hit, sim.simulate_layer(&layer, &hw, false, false));
        // Truncated bytes are rejected with a typed error.
        assert!(matches!(
            SimCache::new().import(&mut ByteReader::new(&bytes[..bytes.len() / 2])),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn tenant_tags_attribute_thread_lookups() {
        let sim = Simulator::exact();
        let hw = test_hw();
        // Unique layer names so this test's keys are cold regardless of
        // what other tests put in the shared global cache.
        let la = test_layer("tenant-probe-a", 24);
        let lb = test_layer("tenant-probe-b", 40);

        let alice = tenant_tag("acct-alice");
        let bob = tenant_tag("acct-bob");
        assert_eq!(alice.name(), "acct-alice");
        // Same name → same counters.
        let alice2 = tenant_tag("acct-alice");

        set_thread_tenant(Some(&alice));
        sim.simulate_layers(std::slice::from_ref(&la), &hw); // miss
        sim.simulate_layers(std::slice::from_ref(&la), &hw); // hit
        set_thread_tenant(Some(&bob));
        sim.simulate_layers(std::slice::from_ref(&la), &hw); // hit (cross-tenant!)
        sim.simulate_layers(std::slice::from_ref(&lb), &hw); // miss
        set_thread_tenant(None);
        sim.simulate_layers(std::slice::from_ref(&lb), &hw); // unattributed hit

        let stats = tenant_stats();
        let get = |name: &str| stats.iter().find(|s| s.tenant == name).unwrap().clone();
        let a = get("acct-alice");
        let b = get("acct-bob");
        assert_eq!((a.hits, a.misses), (1, 1));
        assert_eq!(a.hit_rate(), 0.5);
        // Bob's first lookup of layer `la` hit Alice's cached entry:
        // cross-tenant sharing is visible in per-tenant accounting.
        assert_eq!((b.hits, b.misses), (1, 1));
        assert_eq!(tenant_tag("acct-fresh").name(), "acct-fresh");
        let fresh = tenant_stats()
            .into_iter()
            .find(|s| s.tenant == "acct-fresh")
            .unwrap();
        assert_eq!(fresh.hits + fresh.misses, 0);
        drop(alice2);

        reset_tenant_stats();
        let a = tenant_stats()
            .into_iter()
            .find(|s| s.tenant == "acct-alice")
            .unwrap();
        assert_eq!((a.hits, a.misses), (0, 0));
    }

    #[test]
    fn stats_display_is_readable() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
            contended_reads: 2,
            contended_writes: 1,
        };
        assert_eq!(
            s.to_string(),
            "sim cache: 3 hits / 1 misses (75.0% hit rate), 1 entries, 3 contended locks"
        );
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
