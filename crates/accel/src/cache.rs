//! Layer-level simulation memoization.
//!
//! The same `(layer, hardware)` pairs recur constantly across the
//! pipeline: every exhaustive stage-2 sweep re-simulates one network on
//! ~10^3 configurations, predictor sample collection re-simulates shared
//! skeleton layers (stems, pools, classifiers) across thousands of
//! random points, and the RL search revisits promising regions. A layer
//! simulation is a pure function of the inputs below, so its
//! [`LayerReport`] is cached process-wide and returned bit-identically
//! on every subsequent hit — skipping the exact-fidelity exhaustive
//! tiling search, by far the hottest loop in the evaluation path.
//!
//! The cache is sharded: each shard is an independent `RwLock`-guarded
//! map selected by key hash, so concurrent pool workers rarely contend
//! on the same lock. Hits take a read lock only.
//!
//! # Key / invalidation
//!
//! A cache entry is keyed by the *complete* input of
//! [`crate::Simulator::simulate_layer`]: the [`LayerSpec`] (including
//! its name — the report echoes it), the [`HwConfig`], the
//! [`Fidelity`], both on-chip residency flags, and the full
//! [`CostModel`] quantized to its IEEE-754 bit patterns (f64 `Hash`/`Eq`
//! doesn't exist; bit equality is stricter than `==`, which only means a
//! cost model that differs in any bit — even `-0.0` vs `0.0` — misses
//! rather than aliasing). There is no other hidden input, so entries
//! never need invalidation; [`clear`] exists for tests and for bounding
//! memory, and a full shard past [`SHARD_CAPACITY`] entries is dropped
//! wholesale (crude epoch eviction) before inserting.

use crate::cost::CostModel;
use crate::report::LayerReport;
use crate::sim::Fidelity;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use yoso_arch::{HwConfig, LayerSpec};
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};

/// Number of independent lock-sharded maps (power of two).
const SHARDS: usize = 16;

/// Entries per shard before the shard is dropped wholesale.
pub const SHARD_CAPACITY: usize = 65_536;

/// The full input of a layer simulation, quantized for hashing.
#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    layer: LayerSpec,
    hw: HwConfig,
    fidelity: Fidelity,
    input_onchip: bool,
    output_onchip: bool,
    cost_bits: [u64; 11],
}

fn cost_bits(c: &CostModel) -> [u64; 11] {
    [
        c.word_bytes.to_bits(),
        c.e_mac.to_bits(),
        c.e_rbuf.to_bits(),
        c.e_noc.to_bits(),
        c.e_gbuf.to_bits(),
        c.e_dram.to_bits(),
        c.e_vector.to_bits(),
        c.clock_ghz.to_bits(),
        c.dram_words_per_cycle.to_bits(),
        c.gbuf_words_per_cycle.to_bits(),
        c.vector_lanes.to_bits(),
    ]
}

impl Snapshot for CacheKey {
    fn snapshot(&self, w: &mut ByteWriter) {
        self.layer.snapshot(w);
        self.hw.snapshot(w);
        self.fidelity.snapshot(w);
        w.put_bool(self.input_onchip);
        w.put_bool(self.output_onchip);
        w.put_u64s(&self.cost_bits);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let layer = LayerSpec::restore(r)?;
        let hw = HwConfig::restore(r)?;
        let fidelity = crate::sim::Fidelity::restore(r)?;
        let input_onchip = r.take_bool()?;
        let output_onchip = r.take_bool()?;
        let bits = r.take_u64s()?;
        let cost_bits: [u64; 11] = bits
            .try_into()
            .map_err(|v: Vec<u64>| PersistError::Malformed(format!("cost bits: {}", v.len())))?;
        Ok(CacheKey {
            layer,
            hw,
            fidelity,
            input_onchip,
            output_onchip,
            cost_bits,
        })
    }
}

/// Hit / miss / occupancy / contention counters of the global cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the simulation.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Read-lock acquisitions that found their shard lock held.
    pub contended_reads: u64,
    /// Write-lock acquisitions that found their shard lock held.
    pub contended_writes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sim cache: {} hits / {} misses ({:.1}% hit rate), {} entries, {} contended locks",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.entries,
            self.contended_reads + self.contended_writes
        )
    }
}

/// A sharded memoization map for layer simulations. One process-global
/// instance backs [`crate::Simulator`]; independent instances exist only
/// in tests.
struct SimCache {
    shards: Vec<RwLock<HashMap<CacheKey, LayerReport>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    contended_reads: AtomicU64,
    contended_writes: AtomicU64,
}

impl SimCache {
    fn new() -> Self {
        SimCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            contended_reads: AtomicU64::new(0),
            contended_writes: AtomicU64::new(0),
        }
    }

    fn shard_of(key: &CacheKey) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }

    fn lookup_or_simulate(
        &self,
        key: CacheKey,
        simulate: impl FnOnce() -> LayerReport,
    ) -> LayerReport {
        let shard = &self.shards[Self::shard_of(&key)];
        // Fast path tries the lock first so shard contention is observable
        // (a failed try is counted, then we block as before).
        let guard = shard.try_read().unwrap_or_else(|| {
            self.contended_reads.fetch_add(1, Ordering::Relaxed);
            shard.read()
        });
        if let Some(report) = guard.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return report.clone();
        }
        drop(guard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let report = simulate();
        let mut map = shard.try_write().unwrap_or_else(|| {
            self.contended_writes.fetch_add(1, Ordering::Relaxed);
            shard.write()
        });
        if map.len() >= SHARD_CAPACITY {
            map.clear();
        }
        // A racing worker may have inserted meanwhile; both computed the
        // same pure function, so either value is identical.
        map.insert(key, report.clone());
        report
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.read().len()).sum(),
            contended_reads: self.contended_reads.load(Ordering::Relaxed),
            contended_writes: self.contended_writes.load(Ordering::Relaxed),
        }
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.contended_reads.store(0, Ordering::Relaxed);
        self.contended_writes.store(0, Ordering::Relaxed);
    }

    fn export(&self, w: &mut ByteWriter) {
        let entries: Vec<(CacheKey, LayerReport)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        w.put_usize(entries.len());
        for (key, report) in &entries {
            key.snapshot(w);
            report.snapshot(w);
        }
    }

    fn import(&self, r: &mut ByteReader<'_>) -> Result<usize, PersistError> {
        let n = r.take_usize()?;
        let mut inserted = 0;
        for _ in 0..n {
            let key = CacheKey::restore(r)?;
            let report = LayerReport::restore(r)?;
            let shard = &self.shards[Self::shard_of(&key)];
            let mut map = shard.write();
            if map.len() >= SHARD_CAPACITY {
                map.clear();
            }
            map.insert(key, report);
            inserted += 1;
        }
        Ok(inserted)
    }
}

fn global() -> &'static SimCache {
    static CACHE: OnceLock<SimCache> = OnceLock::new();
    CACHE.get_or_init(SimCache::new)
}

/// Returns the cached report for this exact simulation input, or runs
/// `simulate` and caches its result. Hits are bit-identical to what
/// `simulate` returned on the miss.
pub(crate) fn lookup_or_simulate(
    cost: &CostModel,
    fidelity: Fidelity,
    layer: &LayerSpec,
    hw: &HwConfig,
    input_onchip: bool,
    output_onchip: bool,
    simulate: impl FnOnce() -> LayerReport,
) -> LayerReport {
    let key = CacheKey {
        layer: layer.clone(),
        hw: *hw,
        fidelity,
        input_onchip,
        output_onchip,
        cost_bits: cost_bits(cost),
    };
    global().lookup_or_simulate(key, simulate)
}

/// Snapshot of the global cache counters.
pub fn stats() -> CacheStats {
    global().stats()
}

/// Empties the global cache and zeroes its counters.
pub fn clear() {
    global().clear()
}

/// Serializes every entry of the global cache (a warm-cache export for
/// session checkpoints). Entries carry their full simulation key, so an
/// import into a process with a different cost model simply adds keys
/// that are never hit.
pub fn export(w: &mut ByteWriter) {
    global().export(w)
}

/// Merges previously exported entries into the global cache, returning
/// how many were inserted. Cached values are pure functions of their
/// keys, so importing never changes what a lookup observes — it only
/// turns cold misses into hits.
///
/// # Errors
///
/// Returns [`PersistError`] when the bytes are truncated or malformed;
/// entries read before the failure remain inserted.
pub fn import(r: &mut ByteReader<'_>) -> Result<usize, PersistError> {
    global().import(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use yoso_arch::{Dataflow, LayerKind, PeArray};

    fn test_layer(name: &str, cout: usize) -> LayerSpec {
        LayerSpec {
            name: name.into(),
            kind: LayerKind::Conv {
                k: 3,
                stride: 1,
                cin: 16,
                cout,
            },
            h_in: 8,
            w_in: 8,
            h_out: 8,
            w_out: 8,
        }
    }

    fn test_hw() -> HwConfig {
        HwConfig {
            pe: PeArray { rows: 8, cols: 8 },
            gbuf_kb: 64,
            rbuf_bytes: 256,
            dataflow: Dataflow::Ws,
        }
    }

    fn key_for(sim: &Simulator, layer: &LayerSpec, hw: &HwConfig) -> CacheKey {
        CacheKey {
            layer: layer.clone(),
            hw: *hw,
            fidelity: sim.fidelity,
            input_onchip: false,
            output_onchip: false,
            cost_bits: cost_bits(&sim.cost),
        }
    }

    // Exact counter semantics are asserted on a private instance: the
    // global cache is shared with every other concurrently running test.
    #[test]
    fn instance_counts_hits_misses_entries() {
        let cache = SimCache::new();
        let sim = Simulator::exact();
        let layer = test_layer("l0", 32);
        let hw = test_hw();
        let compute = || sim.simulate_layer(&layer, &hw, false, false);
        let miss = cache.lookup_or_simulate(key_for(&sim, &layer, &hw), compute);
        let hit = cache.lookup_or_simulate(key_for(&sim, &layer, &hw), compute);
        assert_eq!(miss, hit);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn distinct_inputs_do_not_alias() {
        let cache = SimCache::new();
        let exact = Simulator::exact();
        let hw = test_hw();
        let la = test_layer("a", 32);
        let lb = test_layer("a", 48);
        let a = cache.lookup_or_simulate(key_for(&exact, &la, &hw), || {
            exact.simulate_layer(&la, &hw, false, false)
        });
        let b = cache.lookup_or_simulate(key_for(&exact, &lb, &hw), || {
            exact.simulate_layer(&lb, &hw, false, false)
        });
        assert_ne!(a, b);
        // Same layer under a different fidelity is a different key.
        let fast = Simulator::fast();
        cache.lookup_or_simulate(key_for(&fast, &la, &hw), || {
            fast.simulate_layer(&la, &hw, false, false)
        });
        assert_eq!(cache.stats().misses, 3);
        // The cost model participates in the key.
        let mut dear_dram = Simulator::exact();
        dear_dram.cost.e_dram *= 2.0;
        let c = cache.lookup_or_simulate(key_for(&dear_dram, &la, &hw), || {
            dear_dram.simulate_layer(&la, &hw, false, false)
        });
        assert!(c.energy.total_pj() > a.energy.total_pj());
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().entries, 4);
    }

    #[test]
    fn instance_clear_resets_everything() {
        let cache = SimCache::new();
        let sim = Simulator::fast();
        let layer = test_layer("x", 8);
        let hw = test_hw();
        cache.lookup_or_simulate(key_for(&sim, &layer, &hw), || {
            sim.simulate_layer(&layer, &hw, false, false)
        });
        assert_eq!(cache.stats().entries, 1);
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn capacity_overflow_drops_shard() {
        let cache = SimCache::new();
        let sim = Simulator::fast();
        let hw = test_hw();
        let layer = test_layer("cap", 8);
        let report = sim.simulate_layer(&layer, &hw, false, false);
        // Force one shard to the brink, then insert into it again.
        let key = key_for(&sim, &layer, &hw);
        let shard_idx = SimCache::shard_of(&key);
        cache.shards[shard_idx]
            .write()
            .extend((0..SHARD_CAPACITY).map(|i| {
                let mut k = key.clone();
                k.layer.name = format!("filler-{i}");
                (k, report.clone())
            }));
        cache.lookup_or_simulate(key, || report.clone());
        assert!(cache.stats().entries <= SHARD_CAPACITY);
    }

    // The global path: delta-based assertions only (other tests in this
    // binary hit the same process-wide cache concurrently, but only add).
    #[test]
    fn global_cache_serves_simulate_layers() {
        let sim = Simulator::exact();
        let layer = test_layer("global-cache-probe-layer", 24);
        let hw = test_hw();
        let before = stats();
        let miss = sim.simulate_layers(std::slice::from_ref(&layer), &hw);
        let hit = sim.simulate_layers(std::slice::from_ref(&layer), &hw);
        assert_eq!(miss, hit);
        let after = stats();
        assert!(after.misses > before.misses);
        assert!(after.hits > before.hits);
        assert!(after.entries >= 1);
    }

    #[test]
    fn export_import_roundtrips_entries() {
        let cache = SimCache::new();
        let sim = Simulator::exact();
        let hw = test_hw();
        for i in 0..4 {
            let layer = test_layer(&format!("exp-{i}"), 8 + i);
            cache.lookup_or_simulate(key_for(&sim, &layer, &hw), || {
                sim.simulate_layer(&layer, &hw, false, false)
            });
        }
        let mut w = ByteWriter::new();
        cache.export(&mut w);
        let bytes = w.into_bytes();

        let fresh = SimCache::new();
        let n = fresh.import(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(n, 4);
        assert_eq!(fresh.stats().entries, 4);
        // Every restored entry answers bit-identically to a simulation.
        let layer = test_layer("exp-2", 10);
        let hit = fresh.lookup_or_simulate(key_for(&sim, &layer, &hw), || {
            panic!("should be served from the imported cache")
        });
        assert_eq!(hit, sim.simulate_layer(&layer, &hw, false, false));
        // Truncated bytes are rejected with a typed error.
        assert!(matches!(
            SimCache::new().import(&mut ByteReader::new(&bytes[..bytes.len() / 2])),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn stats_display_is_readable() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
            contended_reads: 2,
            contended_writes: 1,
        };
        assert_eq!(
            s.to_string(),
            "sim cache: 3 hits / 1 misses (75.0% hit rate), 1 entries, 3 contended locks"
        );
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
