//! [`Snapshot`] impls for simulator output types, used by the sim-cache
//! export in [`crate::cache`] and by session checkpoints.

use crate::report::{EnergyBreakdown, LayerReport};
use crate::sim::Fidelity;
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};

impl Snapshot for Fidelity {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_u8(match self {
            Fidelity::Exact => 0,
            Fidelity::Fast => 1,
        });
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        match r.take_u8()? {
            0 => Ok(Fidelity::Exact),
            1 => Ok(Fidelity::Fast),
            v => Err(PersistError::Malformed(format!("fidelity tag {v}"))),
        }
    }
}

impl Snapshot for EnergyBreakdown {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_f64(self.compute_pj);
        w.put_f64(self.rbuf_pj);
        w.put_f64(self.noc_pj);
        w.put_f64(self.gbuf_pj);
        w.put_f64(self.dram_pj);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(EnergyBreakdown {
            compute_pj: r.take_f64()?,
            rbuf_pj: r.take_f64()?,
            noc_pj: r.take_f64()?,
            gbuf_pj: r.take_f64()?,
            dram_pj: r.take_f64()?,
        })
    }
}

impl Snapshot for LayerReport {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_str(&self.name);
        w.put_u64(self.macs);
        w.put_f64(self.cycles);
        w.put_f64(self.utilization);
        w.put_f64(self.dram_words);
        w.put_f64(self.gbuf_words);
        self.energy.snapshot(w);
        w.put_bool(self.input_onchip);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(LayerReport {
            name: r.take_str()?,
            macs: r.take_u64()?,
            cycles: r.take_f64()?,
            utilization: r.take_f64()?,
            dram_words: r.take_f64()?,
            gbuf_words: r.take_f64()?,
            energy: EnergyBreakdown::restore(r)?,
            input_onchip: r.take_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrip_is_bit_exact() {
        let report = LayerReport {
            name: "cell2.n4.op1".into(),
            macs: 123_456,
            cycles: 7890.5,
            utilization: 0.625,
            dram_words: 1e6 + 0.25,
            gbuf_words: 2e6,
            energy: EnergyBreakdown {
                compute_pj: 1.0,
                rbuf_pj: 0.5,
                noc_pj: 0.25,
                gbuf_pj: 2.5,
                dram_pj: 1e9,
            },
            input_onchip: true,
        };
        let mut w = ByteWriter::new();
        report.snapshot(&mut w);
        let bytes = w.into_bytes();
        let back = LayerReport::restore(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, report);
        for f in [Fidelity::Exact, Fidelity::Fast] {
            let mut w = ByteWriter::new();
            f.snapshot(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(Fidelity::restore(&mut ByteReader::new(&bytes)).unwrap(), f);
        }
    }
}
