//! Technology cost model: per-access energies and bandwidths.
//!
//! The hierarchy ratios follow the Eyeriss energy taxonomy (Chen et al.,
//! ISSCC'17, cited as \[10\] in the paper): register-file access ≈ MAC cost,
//! global-buffer access ≈ 6x, DRAM access ≈ 200x. Absolute values are pJ
//! for a 16-bit word at a 28 nm-class node.

use serde::{Deserialize, Serialize};

/// Per-access energy costs and machine rates used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Bytes per operand word (16-bit fixed point).
    pub word_bytes: f64,
    /// Energy of one multiply-accumulate (pJ).
    pub e_mac: f64,
    /// Energy of one PE register-file access (pJ).
    pub e_rbuf: f64,
    /// Energy of moving one word across the array NoC (pJ).
    pub e_noc: f64,
    /// Energy of one global-buffer access (pJ).
    pub e_gbuf: f64,
    /// Energy of one DRAM word access (pJ).
    pub e_dram: f64,
    /// Energy of one vector-unit (pooling) operation (pJ).
    pub e_vector: f64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// DRAM bandwidth in words per core cycle.
    pub dram_words_per_cycle: f64,
    /// Global-buffer bandwidth in words per core cycle.
    pub gbuf_words_per_cycle: f64,
    /// Vector-unit lanes for pooling layers.
    pub vector_lanes: f64,
}

impl CostModel {
    /// The default 16-bit, 700 MHz model used throughout the experiments.
    pub fn default_16bit() -> Self {
        CostModel {
            word_bytes: 2.0,
            e_mac: 1.0,
            e_rbuf: 0.8,
            e_noc: 2.0,
            e_gbuf: 6.0,
            e_dram: 200.0,
            e_vector: 0.3,
            clock_ghz: 0.7,
            dram_words_per_cycle: 8.0,
            gbuf_words_per_cycle: 32.0,
            vector_lanes: 16.0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::default_16bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_ordering() {
        let c = CostModel::default();
        assert!(c.e_rbuf <= c.e_mac * 1.5);
        assert!(c.e_gbuf > c.e_rbuf);
        assert!(c.e_dram > 10.0 * c.e_gbuf);
    }

    #[test]
    fn eyeriss_like_ratios() {
        let c = CostModel::default();
        assert!((c.e_gbuf / c.e_mac - 6.0).abs() < 1e-9);
        assert!((c.e_dram / c.e_mac - 200.0).abs() < 1e-9);
    }
}
