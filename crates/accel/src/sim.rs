//! Analytical systolic-array simulator.
//!
//! Plays the role of the paper's modified `nn_dataflow` simulator \[21\]:
//! given a compiled network ([`LayerSpec`] list) and a hardware
//! configuration ([`HwConfig`]), it estimates per-layer cycles and energy
//! by (1) spatially mapping each layer's GEMM view onto the PE array
//! according to the configured dataflow, (2) counting operand accesses at
//! each memory level (PE registers → NoC → global buffer → DRAM), and
//! (3) searching loop tilings under the global-buffer capacity constraint.
//!
//! Two fidelities are provided: [`Fidelity::Exact`] performs an exhaustive
//! tiling search (this is the expensive oracle the paper replaces with a
//! Gaussian-process predictor), while [`Fidelity::Fast`] uses a greedy
//! first-fit tiling.

use crate::cost::CostModel;
use crate::report::{EnergyBreakdown, LayerReport, PerfReport};
use serde::{Deserialize, Serialize};
use yoso_arch::{Dataflow, HwConfig, LayerKind, LayerSpec, NetworkPlan};

/// Simulation fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Exhaustive tiling search (slow, used for ground truth and final
    /// candidate ranking — paper step 3).
    Exact,
    /// Greedy tiling (fast approximate mode).
    Fast,
}

/// The simulator: a cost model plus a fidelity level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Simulator {
    /// Technology cost model.
    pub cost: CostModel,
    /// Tiling-search fidelity.
    pub fidelity: Fidelity,
}

/// GEMM view of a matrix-unit layer.
#[derive(Debug, Clone, Copy)]
struct Gemm {
    /// Output channels (or grouped channels for depthwise).
    m: f64,
    /// Reduction length per output.
    k: f64,
    /// Output pixels.
    n: f64,
    /// Convolution window (1 for linear / pointwise).
    kernel: f64,
    /// Stride (spatial overlap factor for input tiles).
    stride: f64,
}

fn gemm_of(layer: &LayerSpec) -> Option<Gemm> {
    let n = (layer.h_out * layer.w_out) as f64;
    match layer.kind {
        LayerKind::Conv {
            k,
            stride,
            cin,
            cout,
        } => Some(Gemm {
            m: cout as f64,
            k: (k * k * cin) as f64,
            n,
            kernel: k as f64,
            stride: stride as f64,
        }),
        LayerKind::DwConv { k, stride, c } => Some(Gemm {
            m: c as f64,
            k: (k * k) as f64,
            n,
            kernel: k as f64,
            stride: stride as f64,
        }),
        LayerKind::Linear { cin, cout } => Some(Gemm {
            m: cout as f64,
            k: cin as f64,
            n: 1.0,
            kernel: 1.0,
            stride: 1.0,
        }),
        LayerKind::Pool { .. } | LayerKind::GlobalPool { .. } => None,
    }
}

#[inline]
fn ceil_div(a: f64, b: f64) -> f64 {
    (a / b).ceil().max(1.0)
}

/// DRAM traffic components for one layer (in words).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct DramTraffic {
    weights: f64,
    inputs: f64,
    outputs: f64,
}

impl DramTraffic {
    fn total(&self) -> f64 {
        self.weights + self.inputs + self.outputs
    }
}

/// Report returned for a chaos-injected simulator fault: non-finite
/// latency/energy that the evaluator-side guards must quarantine.
fn poisoned_report() -> PerfReport {
    PerfReport {
        latency_ms: f64::NAN,
        energy_mj: f64::NAN,
        ..PerfReport::default()
    }
}

impl Simulator {
    /// Creates a simulator.
    pub fn new(cost: CostModel, fidelity: Fidelity) -> Self {
        Simulator { cost, fidelity }
    }

    /// Exact-fidelity simulator with the default cost model.
    pub fn exact() -> Self {
        Self::new(CostModel::default(), Fidelity::Exact)
    }

    /// Fast-fidelity simulator with the default cost model.
    pub fn fast() -> Self {
        Self::new(CostModel::default(), Fidelity::Fast)
    }

    /// Simulates a compiled network plan on `hw`.
    pub fn simulate_plan(&self, plan: &NetworkPlan, hw: &HwConfig) -> PerfReport {
        self.simulate_layers(&plan.layers, hw)
    }

    /// Simulates a plan on a *flexible-dataflow* variant of `hw`: each
    /// layer independently uses whichever of the four dataflows minimizes
    /// its energy — an extension beyond the paper's fixed-dataflow
    /// template, in the spirit of reconfigurable arrays (Eyeriss v2).
    pub fn simulate_plan_flexible(&self, plan: &NetworkPlan, hw: &HwConfig) -> PerfReport {
        if yoso_chaos::armed() && yoso_chaos::should_fault(yoso_chaos::FaultKind::SimNan) {
            return poisoned_report();
        }
        let gbuf_bytes = (hw.gbuf_kb * 1024) as f64;
        let mut reports = Vec::with_capacity(plan.layers.len());
        let mut prev_retained = false;
        for layer in &plan.layers {
            let v_x = layer.input_elems() as f64;
            let input_onchip = prev_retained && v_x * self.cost.word_bytes <= 0.4 * gbuf_bytes;
            let v_o = layer.output_elems() as f64;
            let output_onchip = v_o * self.cost.word_bytes <= 0.4 * gbuf_bytes;
            let best = Dataflow::ALL
                .iter()
                .map(|&df| {
                    let hw_df = HwConfig {
                        dataflow: df,
                        ..*hw
                    };
                    self.simulate_layer_cached(layer, &hw_df, input_onchip, output_onchip)
                })
                .min_by(|a, b| a.energy.total_pj().total_cmp(&b.energy.total_pj()))
                .expect("four dataflows");
            reports.push(best);
            prev_retained = output_onchip;
        }
        PerfReport::from_layers(reports, self.cost.clock_ghz)
    }

    /// Simulates an explicit layer list on `hw`.
    ///
    /// Chaos note: [`yoso_chaos::FaultKind::SimNan`] injections fire
    /// *here*, before any per-layer cache lookup, so a poisoned report
    /// never enters the memoization layer — the degraded-mode fallback
    /// in the evaluator depends on cached entries staying finite.
    pub fn simulate_layers(&self, layers: &[LayerSpec], hw: &HwConfig) -> PerfReport {
        if yoso_chaos::armed() && yoso_chaos::should_fault(yoso_chaos::FaultKind::SimNan) {
            return poisoned_report();
        }
        let gbuf_bytes = (hw.gbuf_kb * 1024) as f64;
        let mut reports = Vec::with_capacity(layers.len());
        let mut prev_retained = false; // network input arrives from DRAM
        for layer in layers {
            // The input is resident only if the producer retained it AND
            // the full input working set (which may be a concat of several
            // producer outputs) fits the activation share of the buffer.
            let v_x = layer.input_elems() as f64;
            let input_onchip = prev_retained && v_x * self.cost.word_bytes <= 0.4 * gbuf_bytes;
            // Can the producer retain this layer's output in the buffer?
            let v_o = layer.output_elems() as f64;
            let output_onchip = v_o * self.cost.word_bytes <= 0.4 * gbuf_bytes;
            reports.push(self.simulate_layer_cached(layer, hw, input_onchip, output_onchip));
            prev_retained = output_onchip;
        }
        PerfReport::from_layers(reports, self.cost.clock_ghz)
    }

    /// [`Self::simulate_layer`] through the global memoization layer
    /// (see [`crate::cache`]): a repeated input returns the stored
    /// report bit-identically instead of re-running the tiling search.
    fn simulate_layer_cached(
        &self,
        layer: &LayerSpec,
        hw: &HwConfig,
        input_onchip: bool,
        output_onchip: bool,
    ) -> LayerReport {
        crate::cache::lookup_or_simulate(
            &self.cost,
            self.fidelity,
            layer,
            hw,
            input_onchip,
            output_onchip,
            || self.simulate_layer(layer, hw, input_onchip, output_onchip),
        )
    }

    /// Simulates one layer.
    ///
    /// `input_onchip`: the input feature map is already resident in the
    /// global buffer (left there by the producer layer).
    /// `output_onchip`: the output will be retained on-chip (no DRAM
    /// write-back).
    pub fn simulate_layer(
        &self,
        layer: &LayerSpec,
        hw: &HwConfig,
        input_onchip: bool,
        output_onchip: bool,
    ) -> LayerReport {
        match gemm_of(layer) {
            Some(g) => self.simulate_matrix_layer(layer, g, hw, input_onchip, output_onchip),
            None => self.simulate_vector_layer(layer, hw, input_onchip, output_onchip),
        }
    }

    fn simulate_matrix_layer(
        &self,
        layer: &LayerSpec,
        g: Gemm,
        hw: &HwConfig,
        input_onchip: bool,
        output_onchip: bool,
    ) -> LayerReport {
        let c = &self.cost;
        let (r, cols) = (hw.pe.rows as f64, hw.pe.cols as f64);
        let pes = r * cols;
        let rbuf_words = (hw.rbuf_bytes as f64 / c.word_bytes).max(1.0);
        let gbuf_words = (hw.gbuf_kb * 1024) as f64 / c.word_bytes;
        // Register folding: how many stationary operands a PE can cache.
        let fold = (rbuf_words / 4.0).clamp(1.0, 64.0);
        let u = g.m * g.k * g.n;
        let v_w = g.m * g.k;
        let v_x = layer.input_elems() as f64;
        let v_o = g.m * g.n;

        // --- spatial mapping & compute cycles ---------------------------
        let (d1, d2, d3) = match hw.dataflow {
            Dataflow::Ws | Dataflow::Nlr => (g.k, g.m, g.n),
            Dataflow::Os => (g.m, g.n, g.k),
            Dataflow::Rs => (g.k, g.n, g.m),
        };
        let t1 = ceil_div(d1, r);
        let t2 = ceil_div(d2, cols);
        let tile_passes = t1 * t2;
        // Each pass streams d3 elements plus systolic fill/drain.
        let cycles_compute = tile_passes * d3 + tile_passes * (r + cols);
        let utilization = (u / (cycles_compute * pes)).min(1.0);

        // --- global-buffer traffic (words) per dataflow ------------------
        let (w_gbuf, x_gbuf, psum_gbuf, rbuf_ops) = match hw.dataflow {
            Dataflow::Ws => {
                // Weights resident in PE registers; inputs re-streamed once
                // per weight-residency round; partial sums spill when the
                // reduction dimension folds over the array rows.
                let kr = ceil_div(t1, fold);
                let x = v_x * kr * t2;
                let psum = v_o * (2.0 * (kr - 1.0) + 1.0);
                (v_w, x.max(v_x), psum.max(v_o), 3.0 * u)
            }
            Dataflow::Os => {
                // Psums pinned; weights/inputs re-fetched per output tile.
                let or_t = ceil_div(g.m, r);
                let oc_t = ceil_div(g.n, cols);
                let w = v_w * ceil_div(oc_t, fold);
                let x = v_x * ceil_div(or_t, fold);
                (w.max(v_w), x.max(v_x), v_o, 3.0 * u)
            }
            Dataflow::Rs => {
                // Row-stationary: convolutional window reuse benefits both
                // weights and inputs; degenerates for 1x1 kernels.
                let kw = g.kernel.max(1.0);
                let w = v_w * ceil_div(t2, fold * kw);
                let x = v_x * ceil_div(g.m, kw * fold);
                let kr = ceil_div(t1, kw * fold);
                let psum = v_o * (2.0 * (kr - 1.0) + 1.0);
                (w.max(v_w), x.max(v_x), psum.max(v_o), 3.0 * u)
            }
            Dataflow::Nlr => {
                // No local reuse: operands come from the global buffer on
                // (almost) every use; only same-cycle multicast helps.
                let x = u / g.m.min(cols);
                let w = u / g.n.clamp(1.0, 4.0);
                let psum = 2.0 * u / r + v_o;
                (w.max(v_w), x.max(v_x), psum.max(v_o), u)
            }
        };
        let gbuf_total = w_gbuf + x_gbuf + psum_gbuf;
        let noc_words = gbuf_total;

        // --- DRAM traffic via tiling search ------------------------------
        let dram = self.dram_traffic(
            layer,
            g,
            v_w,
            v_x,
            v_o,
            gbuf_words,
            input_onchip,
            output_onchip,
        );

        // --- latency ------------------------------------------------------
        let cycles_mem =
            (dram.total() / c.dram_words_per_cycle).max(gbuf_total / c.gbuf_words_per_cycle);
        let cycles = cycles_compute.max(cycles_mem);

        // --- energy -------------------------------------------------------
        let energy = EnergyBreakdown {
            compute_pj: u * c.e_mac,
            rbuf_pj: rbuf_ops * c.e_rbuf,
            noc_pj: noc_words * c.e_noc,
            gbuf_pj: gbuf_total * c.e_gbuf,
            dram_pj: dram.total() * c.e_dram,
        };
        LayerReport {
            name: layer.name.clone(),
            macs: layer.macs(),
            cycles,
            utilization,
            dram_words: dram.total(),
            gbuf_words: gbuf_total,
            energy,
            input_onchip,
        }
    }

    /// Chooses loop tiles under the buffer capacity and returns DRAM words.
    #[allow(clippy::too_many_arguments)]
    fn dram_traffic(
        &self,
        layer: &LayerSpec,
        g: Gemm,
        v_w: f64,
        v_x: f64,
        v_o: f64,
        gbuf_words: f64,
        input_onchip: bool,
        output_onchip: bool,
    ) -> DramTraffic {
        let out_words = if output_onchip { 0.0 } else { v_o };
        if input_onchip {
            // The input is already resident; weights stream through once.
            return DramTraffic {
                weights: v_w,
                inputs: 0.0,
                outputs: out_words,
            };
        }
        let cap = gbuf_words * 0.9;
        let untiled_fits = v_w + v_x + v_o <= cap;
        // Fast fidelity short-circuits when everything fits; Exact always
        // runs the full mapping search (as nn_dataflow evaluates every
        // loop-blocking scheme), in which case the untiled mapping simply
        // wins when it is feasible.
        if untiled_fits && self.fidelity == Fidelity::Fast {
            return DramTraffic {
                weights: v_w,
                inputs: v_x,
                outputs: out_words,
            };
        }
        // Tiled execution: tile output channels (m_tile), output rows
        // (h_tile) and the reduction dimension (k_tile). Splitting K
        // shrinks the weight/input working set at the price of spilling
        // partial sums to DRAM. Both loop orders are evaluated; Exact
        // fidelity sweeps the full candidate grid (the nn_dataflow-style
        // exhaustive mapping search), Fast tries a handful of points.
        let h_out = layer.h_out.max(1);
        let w_out = layer.w_out.max(1) as f64;
        let h_in = layer.h_in.max(1) as f64;
        let m_max = g.m as usize;
        let k_max = g.k as usize;
        let (m_candidates, h_candidates, k_candidates): (Vec<usize>, Vec<usize>, Vec<usize>) =
            match self.fidelity {
                Fidelity::Exact => {
                    let mut m: Vec<usize> = (1..=m_max).collect();
                    if m.len() > 64 {
                        // Cap extreme layers while keeping a dense grid.
                        m = (1..=64).map(|i| (i * m_max).div_ceil(64)).collect();
                        m.dedup();
                    }
                    let mut k: Vec<usize> = (0..)
                        .map(|p| 1usize << p)
                        .take_while(|&p| p < k_max)
                        .collect();
                    k.push(k_max);
                    (m, (1..=h_out).collect(), k)
                }
                Fidelity::Fast => (
                    vec![m_max, (m_max / 4).max(1), 1],
                    vec![h_out, (h_out / 4).max(1), 1],
                    vec![k_max],
                ),
            };
        let mut best = DramTraffic {
            weights: v_w * h_out as f64,
            inputs: v_x * g.m,
            outputs: out_words,
        }; // pessimistic fallback
        let mut best_cost = f64::INFINITY;
        for &kt in &k_candidates {
            let n_kt = ceil_div(g.k, kt as f64);
            // Partial sums spill to DRAM once per extra reduction pass.
            let psum_spill = if n_kt > 1.0 {
                2.0 * v_o * (n_kt - 1.0)
            } else {
                0.0
            };
            let k_frac = kt as f64 / g.k;
            for &mt in &m_candidates {
                let w_tile = mt as f64 * kt as f64;
                for &ht in &h_candidates {
                    let rows_in = (ht as f64 * g.stride + g.kernel - g.stride).min(h_in);
                    let x_tile = (v_x * k_frac * rows_in / h_in).min(v_x);
                    let o_tile = mt as f64 * ht as f64 * w_out;
                    if w_tile + x_tile + o_tile > cap {
                        continue;
                    }
                    let n_mt = ceil_div(g.m, mt as f64);
                    let n_ht = ceil_div(h_out as f64, ht as f64);
                    let x_eff = (v_x * (rows_in * n_ht) / h_in).max(v_x);
                    // Order A: weights resident across row tiles.
                    let a = DramTraffic {
                        weights: v_w,
                        inputs: x_eff * n_mt,
                        outputs: out_words + psum_spill,
                    };
                    // Order B: inputs resident across channel tiles.
                    let b = DramTraffic {
                        weights: v_w * n_ht,
                        inputs: x_eff,
                        outputs: out_words + psum_spill,
                    };
                    for cand in [a, b] {
                        let cost = cand.total();
                        if cost < best_cost {
                            best_cost = cost;
                            best = cand;
                        }
                    }
                }
            }
        }
        best
    }

    fn simulate_vector_layer(
        &self,
        layer: &LayerSpec,
        hw: &HwConfig,
        input_onchip: bool,
        output_onchip: bool,
    ) -> LayerReport {
        let c = &self.cost;
        let ops = layer.macs() as f64;
        let v_x = layer.input_elems() as f64;
        let v_o = layer.output_elems() as f64;
        let _gbuf_bytes = (hw.gbuf_kb * 1024) as f64;
        let cycles_compute = ops / c.vector_lanes;
        let gbuf_total = v_x + v_o;
        let mut dram = 0.0;
        if !input_onchip {
            dram += v_x;
        }
        if !output_onchip {
            dram += v_o;
        }
        let cycles = cycles_compute.max(dram / c.dram_words_per_cycle);
        let energy = EnergyBreakdown {
            compute_pj: ops * c.e_vector,
            rbuf_pj: 0.0,
            noc_pj: 0.0,
            gbuf_pj: gbuf_total * c.e_gbuf,
            dram_pj: dram * c.e_dram,
        };
        LayerReport {
            name: layer.name.clone(),
            macs: layer.macs(),
            cycles,
            utilization: 0.0,
            dram_words: dram,
            gbuf_words: gbuf_total,
            energy,
            input_onchip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yoso_arch::{Genotype, NetworkSkeleton, PeArray};

    fn conv_layer(cin: usize, cout: usize, hw: usize, k: usize) -> LayerSpec {
        LayerSpec {
            name: "conv".into(),
            kind: LayerKind::Conv {
                k,
                stride: 1,
                cin,
                cout,
            },
            h_in: hw,
            w_in: hw,
            h_out: hw,
            w_out: hw,
        }
    }

    fn hw(rows: usize, cols: usize, gbuf: usize, rbuf: usize, df: Dataflow) -> HwConfig {
        HwConfig {
            pe: PeArray { rows, cols },
            gbuf_kb: gbuf,
            rbuf_bytes: rbuf,
            dataflow: df,
        }
    }

    #[test]
    fn bigger_array_is_faster() {
        let sim = Simulator::fast();
        let l = conv_layer(64, 64, 16, 3);
        let small = sim.simulate_layer(&l, &hw(8, 8, 512, 512, Dataflow::Ws), false, false);
        let big = sim.simulate_layer(&l, &hw(16, 32, 512, 512, Dataflow::Ws), false, false);
        assert!(
            big.cycles < small.cycles,
            "{} !< {}",
            big.cycles,
            small.cycles
        );
    }

    #[test]
    fn bigger_gbuf_reduces_dram() {
        let sim = Simulator::exact();
        // A layer too large for a small buffer.
        let l = conv_layer(128, 128, 32, 3);
        let small = sim.simulate_layer(&l, &hw(16, 16, 108, 512, Dataflow::Ws), false, false);
        let big = sim.simulate_layer(&l, &hw(16, 16, 1024, 512, Dataflow::Ws), false, false);
        assert!(
            big.dram_words <= small.dram_words,
            "{} > {}",
            big.dram_words,
            small.dram_words
        );
        assert!(big.energy.dram_pj <= small.energy.dram_pj);
    }

    #[test]
    fn nlr_burns_more_gbuf_energy() {
        let sim = Simulator::fast();
        let l = conv_layer(32, 32, 16, 3);
        let ws = sim.simulate_layer(&l, &hw(16, 16, 512, 512, Dataflow::Ws), false, false);
        let nlr = sim.simulate_layer(&l, &hw(16, 16, 512, 512, Dataflow::Nlr), false, false);
        assert!(nlr.energy.gbuf_pj > 2.0 * ws.energy.gbuf_pj);
    }

    #[test]
    fn rs_beats_ws_inputs_on_big_kernels() {
        // Row-stationary exploits window reuse; on 5x5 kernels its
        // global-buffer input traffic should not exceed weight-stationary's.
        let sim = Simulator::fast();
        let l = conv_layer(32, 32, 16, 5);
        let cfg_ws = hw(16, 16, 512, 256, Dataflow::Ws);
        let cfg_rs = hw(16, 16, 512, 256, Dataflow::Rs);
        let ws = sim.simulate_layer(&l, &cfg_ws, false, false);
        let rs = sim.simulate_layer(&l, &cfg_rs, false, false);
        assert!(rs.gbuf_words <= ws.gbuf_words * 1.5);
    }

    #[test]
    fn dwconv_underutilizes_array() {
        let sim = Simulator::fast();
        let dw = LayerSpec {
            name: "dw".into(),
            kind: LayerKind::DwConv {
                k: 3,
                stride: 1,
                c: 64,
            },
            h_in: 16,
            w_in: 16,
            h_out: 16,
            w_out: 16,
        };
        let cfg = hw(16, 32, 512, 512, Dataflow::Ws);
        let rep_dw = sim.simulate_layer(&dw, &cfg, false, false);
        let rep_conv = sim.simulate_layer(&conv_layer(64, 64, 16, 3), &cfg, false, false);
        assert!(rep_dw.utilization < rep_conv.utilization);
    }

    #[test]
    fn energy_breakdown_sums_to_total() {
        let sim = Simulator::exact();
        let mut rng = StdRng::seed_from_u64(0);
        let plan = NetworkSkeleton::paper_default().compile(&Genotype::random(&mut rng));
        let rep = sim.simulate_plan(&plan, &hw(16, 16, 512, 256, Dataflow::Os));
        let total: f64 = rep.layers.iter().map(|l| l.energy.total_pj()).sum();
        assert!((total - rep.energy_breakdown.total_pj()).abs() < total * 1e-9);
        assert!((rep.energy_mj - total * 1e-9).abs() < 1e-12);
        assert!(rep.latency_ms > 0.0);
        assert!(rep.utilization > 0.0 && rep.utilization <= 1.0);
    }

    #[test]
    fn exact_never_worse_than_fast_dram() {
        // The exhaustive tiling search must find DRAM traffic no worse than
        // the greedy heuristic on every layer.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let plan = NetworkSkeleton::paper_default().compile(&Genotype::random(&mut rng));
            let cfg = HwConfig::random(&mut rng);
            let exact = Simulator::exact().simulate_plan(&plan, &cfg);
            let fast = Simulator::fast().simulate_plan(&plan, &cfg);
            assert!(
                exact.dram_words <= fast.dram_words + 1.0,
                "exact {} > fast {}",
                exact.dram_words,
                fast.dram_words
            );
        }
    }

    #[test]
    fn onchip_input_cuts_dram() {
        let sim = Simulator::exact();
        let l = conv_layer(32, 32, 16, 3);
        let cfg = hw(16, 16, 512, 512, Dataflow::Ws);
        let cold = sim.simulate_layer(&l, &cfg, false, false);
        let warm = sim.simulate_layer(&l, &cfg, true, false);
        assert!(warm.dram_words < cold.dram_words);
    }

    #[test]
    fn deterministic_simulation() {
        let mut rng = StdRng::seed_from_u64(2);
        let plan = NetworkSkeleton::paper_default().compile(&Genotype::random(&mut rng));
        let cfg = HwConfig::random(&mut rng);
        let a = Simulator::exact().simulate_plan(&plan, &cfg);
        let b = Simulator::exact().simulate_plan(&plan, &cfg);
        assert_eq!(a, b);
    }

    /// `simulate_layers` (which goes through the global memoization
    /// layer) must be bit-identical to hand-running the same on-chip
    /// residency walk over the pure, uncached `simulate_layer` — on both
    /// the cold pass (misses populate the cache) and a warm re-run
    /// (every layer served from the cache).
    #[test]
    fn cached_simulate_layers_bit_identical_to_uncached() {
        let mut rng = StdRng::seed_from_u64(4);
        let plan = NetworkSkeleton::paper_default().compile(&Genotype::random(&mut rng));
        let cfg = HwConfig::random(&mut rng);
        let sim = Simulator::exact();

        // Uncached reference: replicate the residency chaining of
        // `simulate_layers` with direct `simulate_layer` calls.
        let gbuf_bytes = (cfg.gbuf_kb * 1024) as f64;
        let mut reports = Vec::with_capacity(plan.layers.len());
        let mut prev_retained = false;
        for layer in &plan.layers {
            let v_x = layer.input_elems() as f64;
            let input_onchip = prev_retained && v_x * sim.cost.word_bytes <= 0.4 * gbuf_bytes;
            let v_o = layer.output_elems() as f64;
            let output_onchip = v_o * sim.cost.word_bytes <= 0.4 * gbuf_bytes;
            reports.push(sim.simulate_layer(layer, &cfg, input_onchip, output_onchip));
            prev_retained = output_onchip;
        }
        let uncached = PerfReport::from_layers(reports, sim.cost.clock_ghz);

        let cold = sim.simulate_plan(&plan, &cfg);
        let warm = sim.simulate_plan(&plan, &cfg);
        assert_eq!(cold, uncached);
        assert_eq!(warm, uncached);
    }

    #[test]
    fn different_configs_give_different_perf() {
        let mut rng = StdRng::seed_from_u64(3);
        let plan = NetworkSkeleton::paper_default().compile(&Genotype::random(&mut rng));
        let a = Simulator::fast().simulate_plan(&plan, &hw(8, 8, 108, 64, Dataflow::Nlr));
        let b = Simulator::fast().simulate_plan(&plan, &hw(16, 32, 1024, 1024, Dataflow::Ws));
        assert!(a.energy_mj > b.energy_mj);
        assert!(a.latency_ms > b.latency_ms);
    }
}
