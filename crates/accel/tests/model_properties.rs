//! Property tests of the accelerator model's physical invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use yoso_accel::{CostModel, Fidelity, Simulator};
use yoso_arch::{Dataflow, DesignPoint, Genotype, HwConfig, NetworkSkeleton, PeArray};

fn point(seed: u64) -> DesignPoint {
    DesignPoint::random(&mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compute energy (MAC count x MAC energy) is invariant across all
    /// hardware configurations — only data movement changes.
    #[test]
    fn mac_energy_invariant(seed in 0u64..500, a in 0u64..500) {
        let p = point(seed);
        let plan = NetworkSkeleton::tiny().compile(&p.genotype);
        let sim = Simulator::exact();
        let hw2 = point(a).hw;
        let r1 = sim.simulate_plan(&plan, &p.hw);
        let r2 = sim.simulate_plan(&plan, &hw2);
        prop_assert!(
            (r1.energy_breakdown.compute_pj - r2.energy_breakdown.compute_pj).abs()
                < 1e-6 * r1.energy_breakdown.compute_pj.max(1.0)
        );
    }

    /// DRAM traffic never drops below the compulsory working set
    /// (weights + final outputs must move at least once; inputs at most
    /// stay on-chip).
    #[test]
    fn dram_at_least_compulsory_weights(seed in 0u64..500) {
        let p = point(seed);
        let plan = NetworkSkeleton::tiny().compile(&p.genotype);
        let rep = Simulator::exact().simulate_plan(&plan, &p.hw);
        prop_assert!(rep.dram_words >= plan.stats.total_weights as f64 * 0.99);
    }

    /// Latency is bounded below by the pure-compute roofline:
    /// MACs / (PEs * clock).
    #[test]
    fn latency_respects_compute_roofline(seed in 0u64..500) {
        let p = point(seed);
        let plan = NetworkSkeleton::tiny().compile(&p.genotype);
        let cost = CostModel::default();
        let rep = Simulator::exact().simulate_plan(&plan, &p.hw);
        let matrix_macs: u64 = plan
            .layers
            .iter()
            .filter(|l| l.is_matrix_layer())
            .map(|l| l.macs())
            .sum();
        let roofline_ms =
            matrix_macs as f64 / (p.hw.pe.count() as f64 * cost.clock_ghz * 1e9) * 1e3;
        prop_assert!(rep.latency_ms >= roofline_ms * 0.999,
            "latency {} below roofline {}", rep.latency_ms, roofline_ms);
    }

    /// Exact fidelity's tiling search never produces more DRAM traffic
    /// than the greedy heuristic.
    #[test]
    fn exact_dominates_fast(seed in 0u64..200) {
        let p = point(seed);
        let plan = NetworkSkeleton::tiny().compile(&p.genotype);
        let e = Simulator::exact().simulate_plan(&plan, &p.hw);
        let f = Simulator::fast().simulate_plan(&plan, &p.hw);
        prop_assert!(e.dram_words <= f.dram_words + 1.0);
        prop_assert!(e.energy_breakdown.dram_pj <= f.energy_breakdown.dram_pj + 1.0);
    }

    /// NLR (no local reuse) never beats WS on global-buffer energy for
    /// the same configuration — reuse can only help.
    #[test]
    fn nlr_never_beats_ws_gbuf(seed in 0u64..200) {
        let p = point(seed);
        let plan = NetworkSkeleton::tiny().compile(&p.genotype);
        let sim = Simulator::fast();
        let ws = HwConfig { dataflow: Dataflow::Ws, ..p.hw };
        let nlr = HwConfig { dataflow: Dataflow::Nlr, ..p.hw };
        let r_ws = sim.simulate_plan(&plan, &ws);
        let r_nlr = sim.simulate_plan(&plan, &nlr);
        prop_assert!(r_nlr.energy_breakdown.gbuf_pj >= r_ws.energy_breakdown.gbuf_pj * 0.999);
    }

    /// Per-layer reports cover every compiled layer in order.
    #[test]
    fn one_report_per_layer(seed in 0u64..200) {
        let p = point(seed);
        let plan = NetworkSkeleton::paper_default().compile(&p.genotype);
        let rep = Simulator::fast().simulate_plan(&plan, &p.hw);
        prop_assert_eq!(rep.layers.len(), plan.layers.len());
        for (lr, ls) in rep.layers.iter().zip(&plan.layers) {
            prop_assert_eq!(&lr.name, &ls.name);
            prop_assert_eq!(lr.macs, ls.macs());
        }
    }
}

/// Deterministic regression anchor: a known configuration's energy and
/// latency should not drift silently across refactors (update the
/// expectations deliberately when the model changes).
#[test]
fn regression_anchor() {
    let mut rng = StdRng::seed_from_u64(0xA11C);
    let plan = NetworkSkeleton::paper_default().compile(&Genotype::random(&mut rng));
    let hw = HwConfig {
        pe: PeArray { rows: 16, cols: 16 },
        gbuf_kb: 256,
        rbuf_bytes: 256,
        dataflow: Dataflow::Ws,
    };
    let rep = Simulator::new(CostModel::default(), Fidelity::Exact).simulate_plan(&plan, &hw);
    // Loose envelope (20%) so cost-constant tweaks don't break the build,
    // while structural regressions (double counting, dropped layers) do.
    assert!(
        rep.energy_mj > 0.01 && rep.energy_mj < 10.0,
        "energy {}",
        rep.energy_mj
    );
    assert!(
        rep.latency_ms > 0.005 && rep.latency_ms < 50.0,
        "latency {}",
        rep.latency_ms
    );
    assert!(rep.utilization > 0.05, "utilization {}", rep.utilization);
}

/// The flexible-dataflow extension is never worse in energy than the best
/// fixed dataflow (it chooses per layer from the same menu).
#[test]
fn flexible_dataflow_dominates_fixed() {
    for seed in 0..5u64 {
        let p = point(seed);
        let plan = NetworkSkeleton::tiny().compile(&p.genotype);
        let sim = Simulator::fast();
        let flex = sim.simulate_plan_flexible(&plan, &p.hw);
        let best_fixed = Dataflow::ALL
            .iter()
            .map(|&df| {
                sim.simulate_plan(
                    &plan,
                    &HwConfig {
                        dataflow: df,
                        ..p.hw
                    },
                )
                .energy_mj
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            flex.energy_mj <= best_fixed * 1.0001,
            "flexible {} > best fixed {}",
            flex.energy_mj,
            best_fixed
        );
    }
}
