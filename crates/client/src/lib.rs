//! # yoso-client
//!
//! Blocking client for the [`yoso_server`] framed-JSON protocol: one
//! TCP connection, newline-delimited [`proto`](yoso_server::proto)
//! frames, no external runtime.
//!
//! The server may interleave stream frames (`job_event` /
//! `pareto_front` / `job_done`) with request replies on the same
//! connection; [`Client`] buffers them, so [`request`](Client::request)
//! always returns the actual reply and [`wait_done`](Client::wait_done)
//! / [`next_event`](Client::next_event) drain the stream in order.
//! A completed job's non-dominated archive frame is stashed as it
//! passes by and read back with
//! [`pareto_front`](Client::pareto_front).
//!
//! ```no_run
//! use yoso_client::Client;
//! use yoso_server::proto::{JobSpec, Reply};
//! use yoso_core::reward::{Constraints, RewardConfig};
//! # fn main() -> Result<(), yoso_client::ClientError> {
//! let mut client = Client::connect("127.0.0.1:7777")?;
//! let spec = JobSpec::new("acme", RewardConfig::balanced(Constraints::paper()));
//! let job = client.submit(&spec, true)?;
//! let (lines, done) = client.wait_done(job)?;
//! println!("{} events, final state {}", lines.len(), done.state);
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use yoso_server::proto::{
    ErrorCode, JobDone, JobStatus, ParetoFront, ProtoError, Reply, Request, ServerStats,
};

/// What can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, EOF mid-exchange).
    Io(std::io::Error),
    /// The server sent a frame this client cannot decode.
    Proto(ProtoError),
    /// The server refused the request with a typed error frame.
    Server {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            ClientError::Server { .. } => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl ClientError {
    /// The server-sent [`ErrorCode`], when this is a typed refusal.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    fn unexpected(reply: &Reply) -> ClientError {
        ClientError::Proto(ProtoError {
            code: ErrorCode::MalformedFrame,
            message: format!("unexpected reply frame: {reply:?}"),
        })
    }
}

/// One blocking connection to a yoso-server daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    pending: VecDeque<Reply>,
    /// Latest `pareto_front` frame seen per job, stashed as the frames
    /// stream by (they never enter `pending`).
    fronts: HashMap<u64, ParetoFront>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            pending: VecDeque::new(),
            fronts: HashMap::new(),
        })
    }

    fn read_frame(&mut self) -> Result<Reply, ClientError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                continue;
            }
            return Ok(Reply::parse(trimmed)?);
        }
    }

    /// Sends a request and returns its reply, buffering any stream
    /// frames that arrive in between. A typed `error` reply becomes
    /// [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Transport, decode, or server-refusal errors.
    pub fn request(&mut self, req: &Request) -> Result<Reply, ClientError> {
        writeln!(self.writer, "{}", req.to_json())?;
        self.writer.flush()?;
        loop {
            match self.read_frame()? {
                frame @ (Reply::Event { .. } | Reply::Done(_)) => self.pending.push_back(frame),
                Reply::ParetoFront(f) => {
                    self.fronts.insert(f.job, f);
                }
                Reply::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                reply => return Ok(reply),
            }
        }
    }

    /// Submits a job; `stream` attaches this connection to its live
    /// event stream. Returns the job id.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn submit(
        &mut self,
        spec: &yoso_server::proto::JobSpec,
        stream: bool,
    ) -> Result<u64, ClientError> {
        match self.request(&Request::Submit {
            spec: spec.clone(),
            stream,
        })? {
            Reply::Submitted { job } => Ok(job),
            other => Err(ClientError::unexpected(&other)),
        }
    }

    fn status_request(&mut self, req: Request) -> Result<JobStatus, ClientError> {
        match self.request(&req)? {
            Reply::Status(s) => Ok(s),
            other => Err(ClientError::unexpected(&other)),
        }
    }

    /// Queries a job's status.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn status(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        self.status_request(Request::Status { job })
    }

    /// Asks a queued/running job to suspend; the ack carries the
    /// status at request time (watch the stream or poll for
    /// `suspended`).
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn suspend(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        self.status_request(Request::Suspend { job })
    }

    /// Re-enqueues a suspended job (including jobs persisted by a
    /// previous server process).
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn resume(&mut self, job: u64, stream: bool) -> Result<JobStatus, ClientError> {
        self.status_request(Request::Resume { job, stream })
    }

    /// Replays a job's event log into this connection's stream, then
    /// attaches for live events.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn subscribe(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        self.status_request(Request::Subscribe { job })
    }

    /// Fetches aggregate server counters.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(ClientError::unexpected(&other)),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Err(ClientError::unexpected(&other)),
        }
    }

    /// Returns the next stream frame — [`Reply::Event`] or
    /// [`Reply::Done`] — from the buffer or the wire, blocking until
    /// one arrives.
    ///
    /// # Errors
    ///
    /// Transport/decode errors, or a non-stream frame arriving outside
    /// any request (a protocol violation).
    pub fn next_event(&mut self) -> Result<Reply, ClientError> {
        if let Some(frame) = self.pending.pop_front() {
            return Ok(frame);
        }
        loop {
            match self.read_frame()? {
                frame @ (Reply::Event { .. } | Reply::Done(_)) => return Ok(frame),
                Reply::ParetoFront(f) => {
                    self.fronts.insert(f.job, f);
                }
                other => return Err(ClientError::unexpected(&other)),
            }
        }
    }

    /// Collects one job's streamed trace lines until its `job_done`
    /// frame, returning `(lines, done)`. Frames belonging to other
    /// jobs stay buffered for later `wait_done`/`next_event` calls.
    /// Requires a live subscription (submit/resume with `stream`, or
    /// [`subscribe`](Client::subscribe)).
    ///
    /// # Errors
    ///
    /// As [`next_event`](Client::next_event).
    pub fn wait_done(&mut self, job: u64) -> Result<(Vec<String>, JobDone), ClientError> {
        let mut lines = Vec::new();
        // Drain matching frames already buffered, keeping the rest.
        let mut keep = VecDeque::with_capacity(self.pending.len());
        let mut done: Option<JobDone> = None;
        for frame in self.pending.drain(..) {
            if done.is_some() {
                keep.push_back(frame);
                continue;
            }
            match frame {
                Reply::Event { job: j, line, .. } if j == job => lines.push(line),
                Reply::Done(d) if d.job == job => done = Some(d),
                other => keep.push_back(other),
            }
        }
        self.pending = keep;
        if let Some(d) = done {
            return Ok((lines, d));
        }
        loop {
            match self.read_frame()? {
                Reply::Event { job: j, line, .. } if j == job => lines.push(line),
                Reply::Done(d) if d.job == job => return Ok((lines, d)),
                frame @ (Reply::Event { .. } | Reply::Done(_)) => self.pending.push_back(frame),
                Reply::ParetoFront(f) => {
                    self.fronts.insert(f.job, f);
                }
                other => return Err(ClientError::unexpected(&other)),
            }
        }
    }

    /// The latest streamed `pareto_front` frame for `job`, if one has
    /// arrived — the server emits it right before `job_done` on
    /// completed runs, and replays it on `subscribe`. Call after
    /// [`wait_done`](Client::wait_done) reports `completed`.
    pub fn pareto_front(&self, job: u64) -> Option<&ParetoFront> {
        self.fronts.get(&job)
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.writer.peer_addr().ok())
            .field("pending", &self.pending.len())
            .finish()
    }
}
