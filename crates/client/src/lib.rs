//! # yoso-client
//!
//! Blocking client for the [`yoso_server`] framed-JSON protocol: one
//! TCP connection, newline-delimited [`proto`](yoso_server::proto)
//! frames, no external runtime.
//!
//! The server may interleave stream frames (`job_event` /
//! `pareto_front` / `job_done`) with request replies on the same
//! connection; [`Client`] buffers them, so [`request`](Client::request)
//! always returns the actual reply and [`ResilientClient::wait_done`](Client::wait_done)
//! / [`next_event`](Client::next_event) drain the stream in order.
//! A completed job's non-dominated archive frame is stashed as it
//! passes by and read back with
//! [`pareto_front`](Client::pareto_front). Server heartbeat `ping`
//! frames are answered transparently inside the read loop, so an idle
//! [`ResilientClient::wait_done`](Client::wait_done) never trips the server's
//! missed-heartbeat eviction.
//!
//! For connections that must survive network faults and server
//! restarts, [`ResilientClient`] wraps a [`Client`] with jittered
//! exponential-backoff reconnection ([`RetryPolicy`]) and
//! resume-from-last-seen replay: on reconnect it re-subscribes with
//! the next event sequence it expects and drops any replayed
//! duplicates, so each job's collected line stream has zero lost and
//! zero duplicated events no matter how often the transport fails.
//!
//! ```no_run
//! use yoso_client::Client;
//! use yoso_server::proto::{JobSpec, Reply};
//! use yoso_core::reward::{Constraints, RewardConfig};
//! # fn main() -> Result<(), yoso_client::ClientError> {
//! let mut client = Client::connect("127.0.0.1:7777")?;
//! let spec = JobSpec::new("acme", RewardConfig::balanced(Constraints::paper()));
//! let job = client.submit(&spec, true)?;
//! let (lines, done) = client.wait_done(job)?;
//! println!("{} events, final state {}", lines.len(), done.state);
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use yoso_server::proto::{
    ErrorCode, JobDone, JobStatus, ParetoFront, ProtoError, Reply, Request, ServerStats,
};

/// What can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, EOF mid-exchange).
    Io(std::io::Error),
    /// The server sent a frame this client cannot decode.
    Proto(ProtoError),
    /// The server refused the request with a typed error frame.
    Server {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            ClientError::Server { .. } => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl ClientError {
    /// The server-sent [`ErrorCode`], when this is a typed refusal.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// Whether retrying the operation (after reconnecting) can
    /// plausibly succeed. Transport failures and undecodable frames
    /// are retryable — a fresh connection gets a clean stream — as is
    /// a typed [`ErrorCode::AdmissionFull`] refusal (backpressure,
    /// retry after a delay). Every other typed refusal is a fact about
    /// the request or the server's state that a retry cannot change.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Proto(_) => true,
            ClientError::Server { code, .. } => matches!(code, ErrorCode::AdmissionFull),
        }
    }

    fn unexpected(reply: &Reply) -> ClientError {
        ClientError::Proto(ProtoError {
            code: ErrorCode::MalformedFrame,
            message: format!("unexpected reply frame: {reply:?}"),
        })
    }
}

/// One blocking connection to a yoso-server daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    pending: VecDeque<Reply>,
    /// Latest `pareto_front` frame seen per job, stashed as the frames
    /// stream by (they never enter `pending`).
    fronts: HashMap<u64, ParetoFront>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            pending: VecDeque::new(),
            fronts: HashMap::new(),
        })
    }

    fn read_frame(&mut self) -> Result<Reply, ClientError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                continue;
            }
            match Reply::parse(trimmed)? {
                // Heartbeat probe: answer and keep reading. Every call
                // that reads frames stays heartbeat-transparent.
                Reply::Ping => {
                    writeln!(self.writer, "{}", Request::Pong.to_json())?;
                    self.writer.flush()?;
                }
                reply => return Ok(reply),
            }
        }
    }

    /// Sends a request and returns its reply, buffering any stream
    /// frames that arrive in between. A typed `error` reply becomes
    /// [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Transport, decode, or server-refusal errors.
    pub fn request(&mut self, req: &Request) -> Result<Reply, ClientError> {
        writeln!(self.writer, "{}", req.to_json())?;
        self.writer.flush()?;
        loop {
            match self.read_frame()? {
                frame @ (Reply::Event { .. } | Reply::Done(_)) => self.pending.push_back(frame),
                Reply::ParetoFront(f) => {
                    self.fronts.insert(f.job, f);
                }
                Reply::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                reply => return Ok(reply),
            }
        }
    }

    /// Submits a job; `stream` attaches this connection to its live
    /// event stream. Returns the job id.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn submit(
        &mut self,
        spec: &yoso_server::proto::JobSpec,
        stream: bool,
    ) -> Result<u64, ClientError> {
        match self.request(&Request::Submit {
            spec: spec.clone(),
            stream,
        })? {
            Reply::Submitted { job } => Ok(job),
            other => Err(ClientError::unexpected(&other)),
        }
    }

    fn status_request(&mut self, req: Request) -> Result<JobStatus, ClientError> {
        match self.request(&req)? {
            Reply::Status(s) => Ok(s),
            other => Err(ClientError::unexpected(&other)),
        }
    }

    /// Queries a job's status.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn status(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        self.status_request(Request::Status { job })
    }

    /// Asks a queued/running job to suspend; the ack carries the
    /// status at request time (watch the stream or poll for
    /// `suspended`).
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn suspend(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        self.status_request(Request::Suspend { job })
    }

    /// Re-enqueues a suspended job (including jobs persisted by a
    /// previous server process).
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn resume(&mut self, job: u64, stream: bool) -> Result<JobStatus, ClientError> {
        self.status_request(Request::Resume { job, stream })
    }

    /// Replays a job's event log into this connection's stream, then
    /// attaches for live events.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn subscribe(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        self.status_request(Request::Subscribe {
            job,
            from_seq: None,
        })
    }

    /// Like [`subscribe`](Client::subscribe), but replays only events
    /// with sequence ≥ `from_seq` — the idempotent-resume primitive a
    /// reconnecting client uses to pick a stream back up without
    /// re-receiving what it already has.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn subscribe_from(&mut self, job: u64, from_seq: u64) -> Result<JobStatus, ClientError> {
        self.status_request(Request::Subscribe {
            job,
            from_seq: Some(from_seq),
        })
    }

    /// Fetches aggregate server counters.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(ClientError::unexpected(&other)),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Err(ClientError::unexpected(&other)),
        }
    }

    /// Returns the next stream frame — [`Reply::Event`] or
    /// [`Reply::Done`] — from the buffer or the wire, blocking until
    /// one arrives.
    ///
    /// # Errors
    ///
    /// Transport/decode errors, or a non-stream frame arriving outside
    /// any request (a protocol violation).
    pub fn next_event(&mut self) -> Result<Reply, ClientError> {
        if let Some(frame) = self.pending.pop_front() {
            return Ok(frame);
        }
        loop {
            match self.read_frame()? {
                frame @ (Reply::Event { .. } | Reply::Done(_)) => return Ok(frame),
                Reply::ParetoFront(f) => {
                    self.fronts.insert(f.job, f);
                }
                other => return Err(ClientError::unexpected(&other)),
            }
        }
    }

    /// Collects one job's streamed trace lines until its `job_done`
    /// frame, returning `(lines, done)`. Frames belonging to other
    /// jobs stay buffered for later `wait_done`/`next_event` calls.
    /// Requires a live subscription (submit/resume with `stream`, or
    /// [`subscribe`](Client::subscribe)).
    ///
    /// # Errors
    ///
    /// As [`next_event`](Client::next_event).
    pub fn wait_done(&mut self, job: u64) -> Result<(Vec<String>, JobDone), ClientError> {
        let mut lines = Vec::new();
        // Drain matching frames already buffered, keeping the rest.
        let mut keep = VecDeque::with_capacity(self.pending.len());
        let mut done: Option<JobDone> = None;
        for frame in self.pending.drain(..) {
            if done.is_some() {
                keep.push_back(frame);
                continue;
            }
            match frame {
                Reply::Event { job: j, line, .. } if j == job => lines.push(line),
                Reply::Done(d) if d.job == job => done = Some(d),
                other => keep.push_back(other),
            }
        }
        self.pending = keep;
        if let Some(d) = done {
            return Ok((lines, d));
        }
        loop {
            match self.read_frame()? {
                Reply::Event { job: j, line, .. } if j == job => lines.push(line),
                Reply::Done(d) if d.job == job => return Ok((lines, d)),
                frame @ (Reply::Event { .. } | Reply::Done(_)) => self.pending.push_back(frame),
                Reply::ParetoFront(f) => {
                    self.fronts.insert(f.job, f);
                }
                other => return Err(ClientError::unexpected(&other)),
            }
        }
    }

    /// The latest streamed `pareto_front` frame for `job`, if one has
    /// arrived — the server emits it right before `job_done` on
    /// completed runs, and replays it on `subscribe`. Call after
    /// [`ResilientClient::wait_done`](Client::wait_done) reports `completed`.
    pub fn pareto_front(&self, job: u64) -> Option<&ParetoFront> {
        self.fronts.get(&job)
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.writer.peer_addr().ok())
            .field("pending", &self.pending.len())
            .finish()
    }
}

/// Jittered exponential backoff for [`ResilientClient`]: attempt `n`
/// sleeps `base_delay * 2^n` (capped at `max_delay`), scaled by a
/// seeded jitter in `[0.5, 1.5)` so a fleet of reconnecting clients
/// does not stampede the daemon in lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Consecutive failed attempts before giving up (the original
    /// failure is returned).
    pub max_retries: u32,
    /// First-attempt backoff.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed for the jitter stream; same seed, same jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

/// SplitMix64 — the same tiny deterministic generator the chaos layer
/// draws from; here it only decorrelates backoff jitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The sleep before retry `attempt` (0-based), advancing the
    /// jitter stream.
    fn backoff(&self, attempt: u32, jitter_state: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay);
        // Uniform jitter factor in [0.5, 1.5).
        let unit = (splitmix64(jitter_state) >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + unit)
    }
}

/// A [`Client`] that survives dropped connections, garbage frames and
/// server restarts.
///
/// Tracks, per job, the next event sequence it expects; when the
/// transport fails mid-stream it reconnects under [`RetryPolicy`]
/// backoff, re-subscribes with
/// [`subscribe_from`](Client::subscribe_from) at that watermark, and
/// drops any replayed or re-emitted event below it. Because a
/// journal-recovered server re-emits the post-checkpoint suffix
/// byte-identically at the same sequence numbers, the collected stream
/// ends up with zero lost and zero duplicated lines even across a
/// `kill -9` + restart of the daemon.
pub struct ResilientClient {
    addr: String,
    policy: RetryPolicy,
    jitter: u64,
    client: Option<Client>,
    /// Per-job next expected event sequence (== lines collected).
    next_seq: HashMap<u64, u64>,
    /// Per-job lines collected so far (survives reconnects).
    collected: HashMap<u64, Vec<String>>,
    /// Terminal frames seen for jobs other than the one being awaited.
    finished: HashMap<u64, JobDone>,
    fronts: HashMap<u64, ParetoFront>,
    reconnects: u64,
}

impl ResilientClient {
    /// Creates the wrapper; the first connection is established lazily
    /// (and under retry) by the first operation.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> ResilientClient {
        ResilientClient {
            addr: addr.into(),
            policy,
            jitter: 0,
            client: None,
            next_seq: HashMap::new(),
            collected: HashMap::new(),
            finished: HashMap::new(),
            fronts: HashMap::new(),
            reconnects: 0,
        }
    }

    /// Times the transport was re-established after a failure.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn drop_conn(&mut self) {
        if self.client.take().is_some() {
            self.reconnects += 1;
        }
    }

    /// Returns a live connection, dialing under backoff if necessary.
    fn conn(&mut self) -> Result<&mut Client, ClientError> {
        if self.client.is_none() {
            if self.jitter == 0 {
                self.jitter = self.policy.seed;
            }
            let mut attempt = 0u32;
            loop {
                match Client::connect(&self.addr) {
                    Ok(c) => {
                        self.client = Some(c);
                        break;
                    }
                    Err(e) => {
                        if attempt >= self.policy.max_retries {
                            return Err(e);
                        }
                        std::thread::sleep(self.policy.backoff(attempt, &mut self.jitter));
                        attempt += 1;
                    }
                }
            }
        }
        Ok(self.client.as_mut().expect("connection just established"))
    }

    /// Runs one request under the retry policy, reconnecting between
    /// attempts on retryable failures.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        loop {
            let result = self.conn().and_then(&mut op);
            match result {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < self.policy.max_retries => {
                    self.drop_conn();
                    std::thread::sleep(self.policy.backoff(attempt, &mut self.jitter));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Submits a job (no streaming attach — [`ResilientClient::wait_done`]
    /// (ResilientClient::wait_done) subscribes explicitly so the
    /// subscription can be re-established after a reconnect).
    ///
    /// Retried under the policy. Caveat: a retry after a reply lost
    /// in transit can leave an orphan duplicate job on the server; the
    /// id returned is always one this client observed, so tracked
    /// streams stay exact.
    ///
    /// # Errors
    ///
    /// The first non-retryable failure, or the last failure once
    /// retries are exhausted.
    pub fn submit(&mut self, spec: &yoso_server::proto::JobSpec) -> Result<u64, ClientError> {
        let spec = spec.clone();
        let job = self.with_retry(move |c| c.submit(&spec, false))?;
        self.next_seq.insert(job, 0);
        self.collected.insert(job, Vec::new());
        Ok(job)
    }

    /// Resumes a suspended job (including one persisted by a previous
    /// server process), retried under the policy.
    ///
    /// # Errors
    ///
    /// As [`submit`](ResilientClient::submit).
    pub fn resume(&mut self, job: u64) -> Result<JobStatus, ClientError> {
        let status = self.with_retry(move |c| c.resume(job, false))?;
        self.next_seq.entry(job).or_insert(0);
        self.collected.entry(job).or_default();
        Ok(status)
    }

    /// Fetches server stats, retried under the policy.
    ///
    /// # Errors
    ///
    /// As [`submit`](ResilientClient::submit).
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        self.with_retry(|c| c.stats())
    }

    /// Streams `job` to completion, self-healing across transport
    /// failures: subscribes from the current watermark, accepts each
    /// event exactly once (replayed duplicates below the watermark are
    /// dropped), and on any retryable failure reconnects with backoff
    /// and re-subscribes from where it left off. Returns every line of
    /// the job's stream — including those collected on earlier calls
    /// or connections — and the terminal frame.
    ///
    /// # Errors
    ///
    /// A non-retryable failure, or the last failure once
    /// `max_retries` consecutive attempts burned without progress
    /// (progress resets the attempt counter).
    pub fn wait_done(&mut self, job: u64) -> Result<(Vec<String>, JobDone), ClientError> {
        self.next_seq.entry(job).or_insert(0);
        self.collected.entry(job).or_default();
        if let Some(done) = self.finished.get(&job).cloned() {
            return Ok((self.collected.get(&job).cloned().unwrap_or_default(), done));
        }
        let mut attempt = 0u32;
        loop {
            let from = *self.next_seq.get(&job).unwrap_or(&0);
            let result = self.stream_once(job, from);
            match result {
                Ok(Some(done)) => {
                    if let Some(front) = self
                        .client
                        .as_ref()
                        .and_then(|c| c.pareto_front(job))
                        .cloned()
                    {
                        self.fronts.insert(job, front);
                    }
                    self.finished.insert(job, done.clone());
                    return Ok((self.collected.get(&job).cloned().unwrap_or_default(), done));
                }
                Ok(None) => unreachable!("stream_once returns a done frame or an error"),
                Err(e) if e.is_retryable() => {
                    // Reset the attempt budget whenever the connection
                    // made forward progress before dying.
                    if *self.next_seq.get(&job).unwrap_or(&0) > from {
                        attempt = 0;
                    }
                    if attempt >= self.policy.max_retries {
                        return Err(e);
                    }
                    self.drop_conn();
                    std::thread::sleep(self.policy.backoff(attempt, &mut self.jitter));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One subscribe-and-drain attempt on the current connection.
    /// Returns the terminal frame, or an error when the transport or
    /// stream fails first.
    fn stream_once(&mut self, job: u64, from: u64) -> Result<Option<JobDone>, ClientError> {
        // Subscribe on the live connection from the watermark; the
        // reply confirms the job exists before we block on events.
        self.conn()?.subscribe_from(job, from)?;
        loop {
            let frame = self.conn()?.next_event()?;
            match frame {
                Reply::Event { job: j, seq, line } => {
                    if j != job {
                        continue; // other jobs' frames: not ours to track
                    }
                    let next = self.next_seq.entry(job).or_insert(0);
                    if seq < *next {
                        continue; // replayed duplicate below the watermark
                    }
                    if seq > *next {
                        // A gap means the subscription missed events —
                        // resubscribe from the watermark.
                        return Err(ClientError::Io(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("event gap: expected seq {next}, got {seq}"),
                        )));
                    }
                    *next += 1;
                    self.collected.entry(job).or_default().push(line);
                }
                Reply::Done(done) => {
                    if done.job == job {
                        return Ok(Some(done));
                    }
                    self.finished.insert(done.job, done);
                }
                other => return Err(ClientError::unexpected(&other)),
            }
        }
    }

    /// The latest `pareto_front` frame captured for `job` (survives
    /// reconnects, unlike [`Client::pareto_front`]'s).
    pub fn pareto_front(&self, job: u64) -> Option<&ParetoFront> {
        self.fronts.get(&job)
    }
}

impl std::fmt::Debug for ResilientClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientClient")
            .field("addr", &self.addr)
            .field("connected", &self.client.is_some())
            .field("reconnects", &self.reconnects)
            .field("jobs", &self.next_seq.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        let io = ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "reset",
        ));
        assert!(io.is_retryable());
        let proto = ClientError::Proto(ProtoError {
            code: ErrorCode::MalformedFrame,
            message: "garbage".into(),
        });
        assert!(proto.is_retryable());
        let full = ClientError::Server {
            code: ErrorCode::AdmissionFull,
            message: "queue full".into(),
        };
        assert!(full.is_retryable());
        for code in [
            ErrorCode::UnknownJob,
            ErrorCode::InvalidState,
            ErrorCode::FaultBudgetExhausted,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            let e = ClientError::Server {
                code,
                message: String::new(),
            };
            assert!(!e.is_retryable(), "{code} must be fatal");
        }
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            seed: 7,
        };
        let mut s1 = policy.seed;
        let mut s2 = policy.seed;
        let a: Vec<Duration> = (0..8).map(|i| policy.backoff(i, &mut s1)).collect();
        let b: Vec<Duration> = (0..8).map(|i| policy.backoff(i, &mut s2)).collect();
        assert_eq!(a, b, "same seed must give the same jitter sequence");
        for (i, d) in a.iter().enumerate() {
            let exp = policy
                .base_delay
                .saturating_mul(1 << i as u32)
                .min(policy.max_delay);
            assert!(
                *d >= exp.mul_f64(0.5) && *d < exp.mul_f64(1.5),
                "attempt {i}"
            );
        }
        // The cap binds from attempt 5 on (10ms * 32 > 200ms).
        assert!(a[7] < Duration::from_millis(300));
    }

    #[test]
    fn resilient_client_is_lazy_and_tracks_state() {
        let rc = ResilientClient::new("127.0.0.1:1", RetryPolicy::default());
        assert_eq!(rc.reconnects(), 0);
        assert!(rc.pareto_front(0).is_none());
        let dbg = format!("{rc:?}");
        assert!(dbg.contains("connected: false"), "{dbg}");
    }
}
