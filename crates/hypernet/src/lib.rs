//! # yoso-hypernet
//!
//! The one-shot **HyperNet** of the paper (§III-D): an over-parameterized
//! network holding shared weights for *every* candidate operation on
//! *every* edge of every cell instance. A candidate genotype is a single
//! path through the HyperNet; it inherits the shared weights and its
//! validation accuracy is measured with one test run — no per-candidate
//! training.
//!
//! Training follows the paper's uniform-sampling strategy (Eq. 6): each
//! step samples one sub-model uniformly at random and updates only the
//! parameters on the sampled path. The paper stresses that *uniform*
//! sampling (rather than the biased sampling of ENAS/SMASH-style
//! controllers) is vital for the HyperNet to rank sub-models faithfully —
//! an ablation bench in `yoso-bench` reproduces that comparison.
//!
//! Because cell outputs concatenate a genotype-dependent number of nodes,
//! the HyperNet allocates *shape-indexed* preprocessing convolutions and
//! classifier heads (one per possible input-channel count), so every
//! sub-model finds correctly-shaped weights.
//!
//! ## Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use yoso_arch::{Genotype, NetworkSkeleton};
//! use yoso_dataset::{SynthCifar, SynthCifarConfig};
//! use yoso_hypernet::{HyperNet, HyperTrainConfig};
//!
//! let data = SynthCifar::generate(&SynthCifarConfig::tiny());
//! let mut hyper = HyperNet::new(NetworkSkeleton::tiny(), 0);
//! let cfg = HyperTrainConfig { epochs: 1, ..Default::default() };
//! hyper.train(&data, &cfg);
//! let mut rng = StdRng::seed_from_u64(1);
//! let acc = hyper.evaluate_genotype(&Genotype::random(&mut rng), &data.val, 64);
//! assert!((0.0..=1.0).contains(&acc));
//! ```

#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use yoso_arch::{Genotype, NetworkPlan, NetworkSkeleton, Op, INTERNAL_NODES, NODES_PER_CELL};
use yoso_dataset::{Split, SynthCifar};
use yoso_nn::{
    evaluate_with, forward_network, ConvBn, Head, OpWeights, QuantizedNetwork, WeightProvider,
};
use yoso_persist::{ByteReader, ByteWriter, PersistError, Snapshot};
use yoso_tensor::{CosineLr, Graph, ParamStore, Scratch, Tensor};

/// HyperNet training hyper-parameters (paper: SGD momentum 0.9, L2 4e-5,
/// cosine LR 0.05 → 0.0001, batch 144, 300 epochs — scaled down here).
#[derive(Debug, Clone, PartialEq)]
pub struct HyperTrainConfig {
    /// Number of epochs over the training split.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr_max: f32,
    /// Final learning rate.
    pub lr_min: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay (applied only to the sampled path's weights).
    pub weight_decay: f32,
    /// Gradient-norm clip.
    pub grad_clip: f32,
    /// Random-crop/flip augmentation.
    pub augment: bool,
    /// Sampling seed.
    pub seed: u64,
    /// If `false`, disables uniform path sampling and trains a single
    /// fixed path — the *biased* baseline for the sampling ablation.
    pub uniform_sampling: bool,
}

impl Default for HyperTrainConfig {
    fn default() -> Self {
        HyperTrainConfig {
            epochs: 8,
            batch_size: 64,
            lr_max: 0.05,
            lr_min: 0.0001,
            momentum: 0.9,
            weight_decay: 4e-5,
            grad_clip: 5.0,
            augment: true,
            seed: 0,
            uniform_sampling: true,
        }
    }
}

/// Per-epoch HyperNet statistics (the data behind Fig. 5(a)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperEpochStat {
    /// Epoch index.
    pub epoch: usize,
    /// Mean training loss over sampled paths.
    pub train_loss: f64,
    /// Validation accuracy of one freshly sampled sub-model — the paper
    /// uses this as "the accuracy of the HyperNet".
    pub sampled_val_acc: f64,
}

/// The weight-sharing supernet.
#[derive(Debug, Clone)]
pub struct HyperNet {
    skeleton: NetworkSkeleton,
    store: ParamStore,
    stem: ConvBn,
    /// `(cell, which, cin) -> ConvBn`.
    preps: HashMap<(usize, usize, usize), ConvBn>,
    /// `(cell, node, src, op) -> OpWeights`.
    ops: HashMap<(usize, usize, usize, Op), OpWeights>,
    /// `c_last -> Head`.
    heads: HashMap<usize, Head>,
    velocity: Vec<Tensor>,
    /// Conv workspace arena threaded through training steps so im2col
    /// buffers are allocated once, not once per layer per step.
    /// Transient: not persisted in snapshots.
    scratch: Scratch,
}

/// Weight provider view binding a HyperNet to one compiled plan.
#[derive(Debug)]
pub struct HyperProvider<'a> {
    hyper: &'a HyperNet,
    plan: &'a NetworkPlan,
}

impl WeightProvider for HyperProvider<'_> {
    fn stem(&self) -> ConvBn {
        self.hyper.stem
    }
    fn prep(&self, cell: usize, which: usize) -> ConvBn {
        let c = &self.plan.cells[cell];
        let cin = if which == 0 { c.c_in0 } else { c.c_in1 };
        self.hyper.preps[&(cell, which, cin)]
    }
    fn op(&self, cell: usize, node: usize, src: usize, op: Op) -> OpWeights {
        self.hyper.ops[&(cell, node, src, op)]
    }
    fn head(&self) -> Head {
        self.hyper.heads[&self.plan.final_channels()]
    }
}

impl HyperNet {
    /// Allocates shared weights for every edge/op/shape of the skeleton.
    pub fn new(skeleton: NetworkSkeleton, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let stem = ConvBn::alloc(
            &mut store,
            skeleton.input_channels,
            skeleton.init_channels,
            3,
            &mut rng,
        );
        // Cell channel schedule and possible producer output widths.
        let mut c_cur = skeleton.init_channels;
        let mut cell_c = Vec::with_capacity(skeleton.num_cells);
        for idx in 0..skeleton.num_cells {
            if skeleton.is_reduction(idx) {
                c_cur *= 2;
            }
            cell_c.push(c_cur);
        }
        let possible_outputs = |cell: isize| -> Vec<usize> {
            if cell < 0 {
                vec![skeleton.init_channels]
            } else {
                (1..=INTERNAL_NODES)
                    .map(|a| a * cell_c[cell as usize])
                    .collect()
            }
        };
        let mut preps = HashMap::new();
        let mut ops = HashMap::new();
        for idx in 0..skeleton.num_cells {
            let c = cell_c[idx];
            for cin in possible_outputs(idx as isize - 2) {
                preps.insert(
                    (idx, 0usize, cin),
                    ConvBn::alloc(&mut store, cin, c, 1, &mut rng),
                );
            }
            for cin in possible_outputs(idx as isize - 1) {
                preps.insert(
                    (idx, 1usize, cin),
                    ConvBn::alloc(&mut store, cin, c, 1, &mut rng),
                );
            }
            for node in 2..NODES_PER_CELL {
                for src in 0..node {
                    for op in Op::ALL {
                        ops.insert(
                            (idx, node, src, op),
                            OpWeights::alloc(&mut store, op, c, &mut rng),
                        );
                    }
                }
            }
        }
        let mut heads = HashMap::new();
        let last = skeleton.num_cells as isize - 1;
        for c_last in possible_outputs(last) {
            heads.insert(
                c_last,
                Head {
                    w: store.add(Tensor::he_normal(
                        &[skeleton.num_classes, c_last],
                        c_last,
                        &mut rng,
                    )),
                    b: store.add(Tensor::zeros(&[skeleton.num_classes])),
                },
            );
        }
        HyperNet {
            skeleton,
            store,
            stem,
            preps,
            ops,
            heads,
            velocity: Vec::new(),
            scratch: Scratch::new(),
        }
    }

    /// The skeleton this HyperNet was built for.
    pub fn skeleton(&self) -> &NetworkSkeleton {
        &self.skeleton
    }

    /// Total shared parameters.
    pub fn param_count(&self) -> usize {
        self.store.total_elems()
    }

    /// The shared parameter store (read access for custom forward passes
    /// via [`HyperNet::provider`]).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Binds the HyperNet weights to a compiled plan.
    pub fn provider<'a>(&'a self, plan: &'a NetworkPlan) -> HyperProvider<'a> {
        HyperProvider { hyper: self, plan }
    }

    /// Validation accuracy of a genotype with *inherited* weights — a
    /// single test run, the paper's fast accuracy evaluation.
    pub fn evaluate_genotype(&self, genotype: &Genotype, split: &Split, batch_size: usize) -> f64 {
        let plan = self.skeleton.compile(genotype);
        let provider = self.provider(&plan);
        evaluate_with(split, batch_size, |images| {
            let mut g = Graph::new();
            let logits = forward_network(&plan, &mut g, &self.store, &provider, images);
            g.value(logits).clone()
        })
    }

    /// Validation accuracy of a genotype with inherited weights, scored
    /// on the tape-free int8 path: the candidate's dense-conv weights
    /// are quantized once ([`QuantizedNetwork::prepare`]) and every
    /// batch runs as int8 GEMMs. Faster than [`evaluate_genotype`]
    /// (no autograd tape, batched im2col, VNNI when available) at the
    /// cost of conv quantization error — rank correlation with the f32
    /// scores is pinned by the `quantized_scoring` integration test.
    ///
    /// [`evaluate_genotype`]: HyperNet::evaluate_genotype
    pub fn evaluate_genotype_int8(
        &self,
        genotype: &Genotype,
        split: &Split,
        batch_size: usize,
    ) -> f64 {
        let plan = self.skeleton.compile(genotype);
        let provider = self.provider(&plan);
        let qnet = QuantizedNetwork::prepare(&plan, &self.store, &provider);
        evaluate_with(split, batch_size, |images| qnet.forward(&images))
    }

    /// Masked SGD step: only parameters with non-zero gradients (the
    /// sampled path) receive momentum, decay and updates.
    fn masked_sgd_step(&mut self, lr: f32, momentum: f32, weight_decay: f32) {
        let velocity = &mut self.velocity;
        self.store.for_each_mut(|i, value, grad| {
            if velocity.len() <= i {
                velocity.resize_with(i + 1, || Tensor::zeros(value.shape()));
            }
            if grad.sq_norm() == 0.0 {
                return;
            }
            let v = &mut velocity[i];
            for ((vv, g), w) in v.data_mut().iter_mut().zip(grad.data()).zip(value.data()) {
                *vv = momentum * *vv + g + weight_decay * w;
            }
            value.axpy_in_place(-lr, v);
        });
    }

    /// Trains the HyperNet with uniform path sampling; returns the
    /// per-epoch history (Fig. 5(a) data).
    pub fn train(&mut self, data: &SynthCifar, cfg: &HyperTrainConfig) -> Vec<HyperEpochStat> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let steps_per_epoch = (data.train.len() / cfg.batch_size).max(1);
        let sched = CosineLr::new(cfg.lr_max, cfg.lr_min, cfg.epochs * steps_per_epoch);
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut step = 0usize;
        // Biased baseline: one fixed path trained repeatedly.
        let fixed_path = Genotype::random(&mut rng);
        for epoch in 0..cfg.epochs {
            let mut loss_sum = 0.0f64;
            let batches = data.train.epoch_batches(cfg.batch_size, &mut rng);
            let nb = batches.len().max(1);
            for idx in &batches {
                let genotype = if cfg.uniform_sampling {
                    Genotype::random(&mut rng)
                } else {
                    fixed_path
                };
                let plan = self.skeleton.compile(&genotype);
                let (images, labels) = if cfg.augment {
                    data.train.batch_augmented(idx, &mut rng)
                } else {
                    data.train.batch(idx)
                };
                let lr = sched.lr(step);
                step += 1;
                let mut g = Graph::with_scratch(std::mem::take(&mut self.scratch));
                let provider = HyperProvider {
                    hyper: self,
                    plan: &plan,
                };
                let logits = forward_network(&plan, &mut g, &self.store, &provider, images);
                let loss = g.softmax_cross_entropy(logits, &labels);
                loss_sum += g.value(loss).data()[0] as f64;
                self.store.zero_grads();
                self.scratch = g.backward_scratch(loss, &mut self.store);
                self.store.clip_grad_norm(cfg.grad_clip);
                self.masked_sgd_step(lr, cfg.momentum, cfg.weight_decay);
            }
            let probe = Genotype::random(&mut rng);
            let sampled_val_acc = self.evaluate_genotype(&probe, &data.val, cfg.batch_size.max(32));
            history.push(HyperEpochStat {
                epoch,
                train_loss: loss_sum / nb as f64,
                sampled_val_acc,
            });
        }
        history
    }
}

// Restore-by-reconstruct, like the controller: `HyperNet::new` allocates
// the same shape-indexed parameter layout for a given skeleton (its
// construction loops are deterministic; the seed only affects the
// initial values), so restore rebuilds the allocation maps from the
// stored skeleton and overwrites the trained weights and the momentum
// buffers. A snapshot whose parameter shapes disagree with the
// reconstructed layout is rejected as `Malformed`.
impl Snapshot for HyperNet {
    fn snapshot(&self, w: &mut ByteWriter) {
        self.skeleton.snapshot(w);
        self.store.snapshot(w);
        w.put_usize(self.velocity.len());
        for v in &self.velocity {
            v.snapshot(w);
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let skeleton = NetworkSkeleton::restore(r)?;
        let store = ParamStore::restore(r)?;
        let nv = r.take_usize()?;
        let velocity = (0..nv)
            .map(|_| Tensor::restore(r))
            .collect::<Result<Vec<_>, _>>()?;
        let mut hyper = HyperNet::new(skeleton, 0);
        if store.param_count() != hyper.store.param_count() {
            return Err(PersistError::Malformed(format!(
                "hypernet: snapshot has {} params, skeleton implies {}",
                store.param_count(),
                hyper.store.param_count()
            )));
        }
        for (id, value) in store.iter() {
            if value.shape() != hyper.store.value(id).shape() {
                return Err(PersistError::Malformed(format!(
                    "hypernet param {}: snapshot shape {:?} vs layout {:?}",
                    id.index(),
                    value.shape(),
                    hyper.store.value(id).shape()
                )));
            }
        }
        hyper.store = store;
        hyper.velocity = velocity;
        Ok(hyper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yoso_dataset::SynthCifarConfig;

    fn tiny_data() -> SynthCifar {
        SynthCifar::generate(&SynthCifarConfig::tiny())
    }

    #[test]
    fn hypernet_covers_every_submodel_shape() {
        let hyper = HyperNet::new(NetworkSkeleton::tiny(), 0);
        let mut rng = StdRng::seed_from_u64(1);
        // Any random genotype must find weights for all its slots.
        for _ in 0..30 {
            let g = Genotype::random(&mut rng);
            let plan = hyper.skeleton.compile(&g);
            let provider = hyper.provider(&plan);
            for cell in &plan.cells {
                let _ = provider.prep(cell.index, 0);
                let _ = provider.prep(cell.index, 1);
            }
            let _ = provider.head();
        }
    }

    #[test]
    fn restored_hypernet_evaluates_bit_identically() {
        let data = tiny_data();
        let mut hyper = HyperNet::new(NetworkSkeleton::tiny(), 3);
        let cfg = HyperTrainConfig {
            epochs: 1,
            batch_size: 32,
            augment: false,
            ..Default::default()
        };
        hyper.train(&data, &cfg);
        let mut w = ByteWriter::new();
        hyper.snapshot(&mut w);
        let bytes = w.into_bytes();
        let back = HyperNet::restore(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back.skeleton(), hyper.skeleton());
        assert_eq!(back.param_count(), hyper.param_count());
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let g = Genotype::random(&mut rng);
            let a = hyper.evaluate_genotype(&g, &data.val, 32);
            let b = back.evaluate_genotype(&g, &data.val, 32);
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Truncated snapshot -> typed error.
        assert!(matches!(
            HyperNet::restore(&mut ByteReader::new(&bytes[..bytes.len() - 9])),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn training_reduces_loss_and_improves_probe_accuracy() {
        let data = tiny_data();
        let mut hyper = HyperNet::new(NetworkSkeleton::tiny(), 0);
        let cfg = HyperTrainConfig {
            epochs: 12,
            batch_size: 32,
            augment: false,
            lr_max: 0.05,
            ..Default::default()
        };
        let hist = hyper.train(&data, &cfg);
        assert_eq!(hist.len(), 12);
        // Uniform path sampling trains each shared weight only
        // occasionally, so per-epoch loss is noisy: compare window means.
        let mean_loss =
            |s: &[HyperEpochStat]| s.iter().map(|h| h.train_loss).sum::<f64>() / s.len() as f64;
        assert!(
            mean_loss(&hist[9..]) < mean_loss(&hist[..3]),
            "loss did not decrease: {hist:?}"
        );
        // Inherited-weight sub-models beat chance (0.1) on average after
        // training; individual rarely-sampled paths can still be weak.
        // Average over enough genotypes that one weak rarely-sampled
        // path cannot drag the estimate below chance.
        let mut rng = StdRng::seed_from_u64(9);
        let mean_acc: f64 = (0..8)
            .map(|_| hyper.evaluate_genotype(&Genotype::random(&mut rng), &data.val, 64))
            .sum::<f64>()
            / 8.0;
        assert!(mean_acc > 0.11, "mean inherited accuracy {mean_acc}");
    }

    #[test]
    fn evaluation_does_not_mutate_weights() {
        let data = tiny_data();
        let hyper = HyperNet::new(NetworkSkeleton::tiny(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        let g = Genotype::random(&mut rng);
        let a = hyper.evaluate_genotype(&g, &data.val, 64);
        let b = hyper.evaluate_genotype(&g, &data.val, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn different_genotypes_get_different_accuracy() {
        let data = tiny_data();
        let mut hyper = HyperNet::new(NetworkSkeleton::tiny(), 4);
        let cfg = HyperTrainConfig {
            epochs: 2,
            batch_size: 32,
            augment: false,
            ..Default::default()
        };
        hyper.train(&data, &cfg);
        let mut rng = StdRng::seed_from_u64(5);
        let accs: Vec<f64> = (0..5)
            .map(|_| hyper.evaluate_genotype(&Genotype::random(&mut rng), &data.val, 64))
            .collect();
        let distinct = accs.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9);
        assert!(distinct, "all sub-models identical: {accs:?}");
    }

    #[test]
    fn param_count_much_larger_than_single_network() {
        let hyper = HyperNet::new(NetworkSkeleton::tiny(), 0);
        let mut rng = StdRng::seed_from_u64(6);
        let plan = NetworkSkeleton::tiny().compile(&Genotype::random(&mut rng));
        let single = yoso_nn::CellNetwork::new(plan, 0);
        assert!(hyper.param_count() > 5 * single.param_count());
    }
}
