//! # yoso-dataset
//!
//! **SynthCifar**: a procedurally generated, CIFAR-10-like image
//! classification task used as the stand-in for CIFAR-10 in this offline
//! reproduction (see DESIGN.md, substitution table).
//!
//! Ten classes are defined by structured visual factors — stripe
//! orientation and frequency, checkerboards, radial rings, blob lattices
//! and gradient textures, each in two hue variants — with per-sample
//! jitter (phase, frequency, amplitude, global color shift, pixel noise)
//! plus optional label noise. The task is deliberately *not* solvable from
//! mean color alone, so convolutional feature extractors of different
//! capacity reach measurably different accuracies — which is exactly the
//! property the HyperNet-ranking and search experiments require.
//!
//! ## Example
//!
//! ```
//! use yoso_dataset::{SynthCifar, SynthCifarConfig};
//! let data = SynthCifar::generate(&SynthCifarConfig::tiny());
//! assert_eq!(data.train.len(), 256);
//! let (images, labels) = data.train.batch(&[0, 1, 2]);
//! assert_eq!(images.shape(), &[3, 3, data.config.image_hw, data.config.image_hw]);
//! assert_eq!(labels.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use yoso_tensor::Tensor;

/// Generation parameters for [`SynthCifar`].
#[derive(Debug, Clone, PartialEq)]
pub struct SynthCifarConfig {
    /// Square image size.
    pub image_hw: usize,
    /// Number of classes (≤ 10).
    pub num_classes: usize,
    /// Training split size.
    pub train_count: usize,
    /// Validation split size (used by the search reward).
    pub val_count: usize,
    /// Held-out test split size.
    pub test_count: usize,
    /// Standard deviation of additive pixel noise.
    pub noise: f32,
    /// Fraction of training labels randomly flipped.
    pub label_noise: f64,
    /// Master seed; every split derives its own stream.
    pub seed: u64,
}

impl SynthCifarConfig {
    /// Default CPU-scale dataset (paper: CIFAR-10 50k/10k at 32x32).
    pub fn default_scale() -> Self {
        SynthCifarConfig {
            image_hw: 16,
            num_classes: 10,
            train_count: 2048,
            val_count: 512,
            test_count: 512,
            noise: 0.3,
            label_noise: 0.04,
            seed: 0xC1FA5,
        }
    }

    /// Mid-scale dataset matching `NetworkSkeleton::small()` (12x12).
    pub fn small() -> Self {
        SynthCifarConfig {
            image_hw: 12,
            num_classes: 10,
            train_count: 1024,
            val_count: 256,
            test_count: 256,
            noise: 0.3,
            label_noise: 0.04,
            seed: 0xC1FA5,
        }
    }

    /// Tiny dataset for unit tests.
    pub fn tiny() -> Self {
        SynthCifarConfig {
            image_hw: 8,
            num_classes: 10,
            train_count: 256,
            val_count: 128,
            test_count: 128,
            noise: 0.05,
            label_noise: 0.0,
            seed: 7,
        }
    }
}

impl Default for SynthCifarConfig {
    fn default() -> Self {
        Self::default_scale()
    }
}

/// One split (train/val/test) of the dataset.
#[derive(Debug, Clone)]
pub struct Split {
    images: Vec<f32>,
    labels: Vec<usize>,
    hw: usize,
}

impl Split {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the split holds no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of example `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Gathers the given examples into an NCHW batch tensor plus labels.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let px = 3 * self.hw * self.hw;
        let mut data = Vec::with_capacity(indices.len() * px);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.images[i * px..(i + 1) * px]);
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(&[indices.len(), 3, self.hw, self.hw], data),
            labels,
        )
    }

    /// Gathers a batch with random-crop (1-pixel pad) and horizontal-flip
    /// augmentation, the CPU-scale analogue of the paper's "standard random
    /// crop data augmentation".
    pub fn batch_augmented<R: Rng + ?Sized>(
        &self,
        indices: &[usize],
        rng: &mut R,
    ) -> (Tensor, Vec<usize>) {
        let hw = self.hw;
        let px = 3 * hw * hw;
        let mut out = vec![0.0f32; indices.len() * px];
        let mut labels = Vec::with_capacity(indices.len());
        for (bi, &i) in indices.iter().enumerate() {
            labels.push(self.labels[i]);
            let src = &self.images[i * px..(i + 1) * px];
            let dy = rng.random_range(-1i32..=1);
            let dx = rng.random_range(-1i32..=1);
            let flip = rng.random_bool(0.5);
            let dst = &mut out[bi * px..(bi + 1) * px];
            for c in 0..3 {
                for y in 0..hw {
                    let sy = y as i32 + dy;
                    for x in 0..hw {
                        let sx0 = if flip { hw - 1 - x } else { x } as i32;
                        let sx = sx0 + dx;
                        let v = if sy >= 0 && sy < hw as i32 && sx >= 0 && sx < hw as i32 {
                            src[c * hw * hw + sy as usize * hw + sx as usize]
                        } else {
                            0.0
                        };
                        dst[c * hw * hw + y * hw + x] = v;
                    }
                }
            }
        }
        (Tensor::from_vec(&[indices.len(), 3, hw, hw], out), labels)
    }

    /// A shuffled epoch of minibatch index lists (trailing partial batch
    /// dropped).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn epoch_batches<R: Rng + ?Sized>(
        &self,
        batch_size: usize,
        rng: &mut R,
    ) -> Vec<Vec<usize>> {
        assert!(batch_size > 0);
        let mut order: Vec<usize> = (0..self.len()).collect();
        // Fisher-Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        order
            .chunks(batch_size)
            .filter(|c| c.len() == batch_size)
            .map(|c| c.to_vec())
            .collect()
    }
}

/// The generated dataset: train / validation / test splits.
#[derive(Debug, Clone)]
pub struct SynthCifar {
    /// Generation parameters.
    pub config: SynthCifarConfig,
    /// Training split (label noise applied here only).
    pub train: Split,
    /// Validation split (drives the search reward, like the paper's
    /// validation accuracy).
    pub val: Split,
    /// Held-out test split (final "test error" reporting).
    pub test: Split,
}

impl SynthCifar {
    /// Generates the dataset deterministically from `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes` is 0 or greater than 10.
    pub fn generate(config: &SynthCifarConfig) -> Self {
        assert!(
            (1..=10).contains(&config.num_classes),
            "num_classes must be 1..=10"
        );
        let train = generate_split(config, config.train_count, 1, config.label_noise);
        let val = generate_split(config, config.val_count, 2, 0.0);
        let test = generate_split(config, config.test_count, 3, 0.0);
        SynthCifar {
            config: config.clone(),
            train,
            val,
            test,
        }
    }
}

fn generate_split(config: &SynthCifarConfig, count: usize, stream: u64, label_noise: f64) -> Split {
    let hw = config.image_hw;
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(stream));
    let px = 3 * hw * hw;
    let mut images = vec![0.0f32; count * px];
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let class = i % config.num_classes;
        render_class_image(
            class,
            hw,
            config.noise,
            &mut rng,
            &mut images[i * px..(i + 1) * px],
        );
        let label = if label_noise > 0.0 && rng.random_bool(label_noise) {
            rng.random_range(0..config.num_classes)
        } else {
            class
        };
        labels.push(label);
    }
    Split { images, labels, hw }
}

/// Hue palettes: (r, g, b) weight triples per hue variant.
const PALETTES: [[f32; 3]; 2] = [[1.0, 0.55, 0.25], [0.3, 0.6, 1.0]];

/// Renders one image of `class` into `out` (`[3 * hw * hw]`, CHW).
fn render_class_image<R: Rng + ?Sized>(
    class: usize,
    hw: usize,
    noise: f32,
    rng: &mut R,
    out: &mut [f32],
) {
    let family = class % 5;
    let palette = PALETTES[class / 5 % 2];
    // Higher pixel noise also widens the structural jitter, so `noise`
    // doubles as a task-difficulty knob: harder datasets spread the
    // accuracies of different architectures apart (needed for the
    // HyperNet ranking experiments).
    let jit = 1.0 + 3.0 * noise;
    let phase: f32 = rng.random_range(0.0..std::f32::consts::TAU);
    let freq_jit: f32 = rng.random_range((1.0 - 0.15 * jit).max(0.4)..1.0 + 0.15 * jit);
    let angle_jit: f32 = rng.random_range(-0.15 * jit..0.15 * jit);
    let amp: f32 = rng.random_range((1.0 - 0.3 * jit).max(0.25)..1.0);
    let color_shift: [f32; 3] = [
        rng.random_range(-0.12 * jit..0.12 * jit),
        rng.random_range(-0.12 * jit..0.12 * jit),
        rng.random_range(-0.12 * jit..0.12 * jit),
    ];
    let n = hw as f32;
    for y in 0..hw {
        for x in 0..hw {
            // Normalized coordinates in [-1, 1].
            let u = 2.0 * (x as f32 + 0.5) / n - 1.0;
            let v = 2.0 * (y as f32 + 0.5) / n - 1.0;
            let p = match family {
                // Oriented stripes at a class-specific angle.
                0 => {
                    let ang = 0.9 + angle_jit;
                    let t = u * ang.cos() + v * ang.sin();
                    (0.5 + 0.5 * (t * 6.0 * freq_jit + phase).sin()) * amp
                }
                // Checkerboard.
                1 => {
                    let fx = ((u * 3.0 * freq_jit + phase).sin() > 0.0) as u8;
                    let fy = ((v * 3.0 * freq_jit + phase * 0.7).sin() > 0.0) as u8;
                    ((fx ^ fy) as f32) * amp
                }
                // Radial rings.
                2 => {
                    let r = (u * u + v * v).sqrt();
                    (0.5 + 0.5 * (r * 9.0 * freq_jit + phase).sin()) * amp
                }
                // Blob lattice (product of sinusoids; bright spots).
                3 => {
                    let b = (u * 4.0 * freq_jit + phase).sin() * (v * 4.0 * freq_jit + phase).sin();
                    (b.max(0.0)) * amp
                }
                // Diagonal gradient with fine texture.
                _ => {
                    let g = 0.5 * (u + v) * 0.5 + 0.5;
                    let tex = 0.25 * ((u * 11.0 + phase).sin() * (v * 11.0 - phase).cos());
                    ((g + tex).clamp(0.0, 1.0)) * amp
                }
            };
            for c in 0..3 {
                let base = p * palette[c] + color_shift[c];
                let jittered = base + noise * (rng.random::<f32>() - 0.5);
                out[c * hw * hw + y * hw + x] = jittered.clamp(0.0, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = SynthCifarConfig::tiny();
        let a = SynthCifar::generate(&cfg);
        let b = SynthCifar::generate(&cfg);
        assert_eq!(a.train.images, b.train.images);
        assert_eq!(a.train.labels, b.train.labels);
        assert_eq!(a.test.labels, b.test.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SynthCifarConfig::tiny();
        let a = SynthCifar::generate(&cfg);
        cfg.seed = 8;
        let b = SynthCifar::generate(&cfg);
        assert_ne!(a.train.images, b.train.images);
    }

    #[test]
    fn splits_have_requested_sizes_and_balanced_labels() {
        let cfg = SynthCifarConfig::tiny();
        let d = SynthCifar::generate(&cfg);
        assert_eq!(d.train.len(), 256);
        assert_eq!(d.val.len(), 128);
        assert_eq!(d.test.len(), 128);
        // Balanced by construction (round-robin classes, no label noise).
        let mut counts = [0usize; 10];
        for i in 0..d.val.len() {
            counts[d.val.label(i)] += 1;
        }
        for c in counts {
            assert!(c >= 12, "class count {c}");
        }
    }

    #[test]
    fn pixel_range_clamped() {
        let d = SynthCifar::generate(&SynthCifarConfig::tiny());
        let (imgs, _) = d.train.batch(&(0..64).collect::<Vec<_>>());
        assert!(imgs.min() >= 0.0);
        assert!(imgs.max() <= 1.0);
    }

    #[test]
    fn batch_layout_nchw() {
        let d = SynthCifar::generate(&SynthCifarConfig::tiny());
        let (imgs, labels) = d.train.batch(&[5, 9]);
        assert_eq!(imgs.shape(), &[2, 3, 8, 8]);
        assert_eq!(labels, vec![d.train.label(5), d.train.label(9)]);
    }

    #[test]
    fn augmented_batch_same_shape_and_range() {
        let d = SynthCifar::generate(&SynthCifarConfig::tiny());
        let mut rng = StdRng::seed_from_u64(1);
        let (imgs, labels) = d.train.batch_augmented(&[0, 1, 2, 3], &mut rng);
        assert_eq!(imgs.shape(), &[4, 3, 8, 8]);
        assert_eq!(labels.len(), 4);
        assert!(imgs.min() >= 0.0 && imgs.max() <= 1.0);
    }

    #[test]
    fn epoch_batches_cover_split_once() {
        let d = SynthCifar::generate(&SynthCifarConfig::tiny());
        let mut rng = StdRng::seed_from_u64(2);
        let batches = d.train.epoch_batches(32, &mut rng);
        assert_eq!(batches.len(), 8);
        let mut seen = vec![false; d.train.len()];
        for b in &batches {
            for &i in b {
                assert!(!seen[i], "index {i} repeated");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn classes_statistically_distinct() {
        // Images of two classes from different pattern families should have
        // clearly different spatial-gradient statistics.
        let d = SynthCifar::generate(&SynthCifarConfig::tiny());
        let grad_energy = |cls: usize| -> f32 {
            let idx: Vec<usize> = (0..d.train.len())
                .filter(|&i| d.train.label(i) == cls)
                .collect();
            let (imgs, _) = d.train.batch(&idx);
            let hw = 8usize;
            let mut e = 0.0f32;
            let data = imgs.data();
            for img in 0..idx.len() {
                for y in 0..hw {
                    for x in 0..hw - 1 {
                        let a = data[img * 3 * hw * hw + y * hw + x];
                        let b = data[img * 3 * hw * hw + y * hw + x + 1];
                        e += (a - b).abs();
                    }
                }
            }
            e / idx.len() as f32
        };
        let e0 = grad_energy(0); // stripes (high horizontal gradient)
        let e4 = grad_energy(4); // smooth gradient family
        assert!(
            (e0 - e4).abs() > 0.1,
            "classes look identical: {e0} vs {e4}"
        );
    }

    #[test]
    fn label_noise_flips_some_labels() {
        let mut cfg = SynthCifarConfig::tiny();
        cfg.label_noise = 0.5;
        let d = SynthCifar::generate(&cfg);
        let flipped = (0..d.train.len())
            .filter(|&i| d.train.label(i) != i % cfg.num_classes)
            .count();
        assert!(flipped > 50, "expected many flips, got {flipped}");
    }

    #[test]
    #[should_panic(expected = "num_classes")]
    fn rejects_zero_classes() {
        let mut cfg = SynthCifarConfig::tiny();
        cfg.num_classes = 0;
        let _ = SynthCifar::generate(&cfg);
    }
}
