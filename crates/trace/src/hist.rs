//! Fixed-footprint latency histograms.
//!
//! Values (nanoseconds by convention) land in log₂ buckets: bucket `b`
//! covers `[2^(b-1), 2^b)`, so 64 buckets span the entire `u64` range
//! with a worst-case quantile error of 2x — plenty for "where does the
//! time go" telemetry, at 600 bytes per histogram and O(1) record cost.

use crate::event::Event;

const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (nanoseconds by convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper edge of the bucket
    /// holding the `ceil(q * count)`-th smallest sample, clamped to the
    /// observed `[min, max]`. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if b >= 64 { u64::MAX } else { 1u64 << b };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Renders this histogram as a summary [`Event`] of the given kind,
    /// tagged with `name`. Durations are reported in milliseconds under
    /// the nanosecond convention.
    pub fn summary_event(&self, kind: &str, name: &str) -> Event {
        Event::new(kind)
            .with_str("name", name)
            .with_u64("count", self.count())
            .with_f64("total_ms", self.sum() as f64 / 1e6)
            .with_f64("mean_ms", self.mean() / 1e6)
            .with_f64("min_ms", self.min() as f64 / 1e6)
            .with_f64("p50_ms", self.quantile(0.5) as f64 / 1e6)
            .with_f64("p95_ms", self.quantile(0.95) as f64 / 1e6)
            .with_f64("max_ms", self.max() as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn records_track_exact_moments() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_within_a_bucket() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        // True median 500; bucket edges guarantee at most 2x error.
        assert!((256..=1024).contains(&p50), "p50 {p50}");
        assert!(h.quantile(1.0) <= 1000);
        assert!(h.quantile(0.0) >= 1);
        // Quantiles never decrease.
        assert!(h.quantile(0.95) >= p50);
    }

    #[test]
    fn merge_equals_recording_all() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [5u64, 50, 500] {
            a.record(v);
            all.record(v);
        }
        for v in [7u64, 70, 70_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn zero_sample_is_representable() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn summary_event_roundtrips() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        h.record(3_000_000);
        let e = h.summary_event("span_summary", "gp.predict_batch");
        let parsed = crate::Event::parse(&e.to_json()).unwrap();
        assert_eq!(parsed.get_str("name"), Some("gp.predict_batch"));
        assert_eq!(parsed.get_u64("count"), Some(2));
        assert_eq!(parsed.get_f64("total_ms"), Some(4.0));
    }
}
