//! # yoso-trace
//!
//! Zero-dependency structured telemetry for the co-design pipeline.
//!
//! YOSO's whole claim is speed — one supernet pass plus a GP lookup
//! instead of per-candidate training — so the pipeline needs a way to see
//! *where* time and reward go during a run: controller sampling vs GP
//! batches vs simulator-cache misses vs worker-pool stalls. This crate
//! provides the four building blocks and nothing else:
//!
//! * [`Event`] / [`Value`] — flat structured events with hand-rolled,
//!   round-trippable JSON serialization ([`Event::to_json`] /
//!   [`Event::parse`]);
//! * [`Histogram`] — fixed-footprint log₂-bucketed latency histograms
//!   with approximate quantiles;
//! * [`span`] / [`Span`] — RAII timers recording into the global
//!   registry on drop;
//! * [`Trace`] — a cloneable handle over a buffered JSONL sink (file or
//!   in-memory), plus [`Trace::disabled`] which makes every emit a no-op.
//!
//! ## The global registry and the enabled flag
//!
//! Subsystems too deep to thread a [`Trace`] handle through (the worker
//! pool, the GP predictor, the RL controller) record into a process-wide
//! registry of named counters and histograms via [`counter_add`] and
//! [`record_duration_ns`]. Every registry entry point first checks a
//! single relaxed atomic flag ([`enabled`]); when tracing is off —
//! the default — instrumentation compiles down to one load and a
//! predictable branch, so hot paths are unaffected. Turn collection on
//! with [`set_enabled`]; snapshot with [`snapshot`].
//!
//! ## Example
//!
//! ```
//! use yoso_trace::{Event, Trace};
//!
//! let trace = Trace::memory();
//! trace.emit(Event::new("search_iter").with_u64("iteration", 1).with_f64("reward", 0.71));
//! let line = trace.lines().pop().unwrap();
//! assert_eq!(Event::parse(&line).unwrap().get_f64("reward"), Some(0.71));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod registry;
mod sink;

pub use event::{Event, ParseError, Value};
pub use hist::Histogram;
pub use registry::{
    counter_add, enabled, record_duration_ns, reset, set_enabled, snapshot, span, RegistrySnapshot,
    Span,
};
pub use sink::Trace;
