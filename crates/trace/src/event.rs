//! Flat structured events with hand-rolled JSONL serialization.
//!
//! An [`Event`] is a kind tag plus an ordered list of scalar fields.
//! [`Event::to_json`] emits exactly one line of standard JSON (the kind
//! under the reserved `"event"` key, fields in insertion order);
//! [`Event::parse`] reads that line back. The pair round-trips: for any
//! event with finite floats, `parse(to_json(e)) == e`, including f64 bit
//! patterns (floats are printed with Rust's shortest-round-trip
//! formatter). Non-finite floats serialize as the strings `"NaN"`,
//! `"Infinity"` and `"-Infinity"` — valid JSON, at the cost of becoming
//! [`Value::Str`] on re-parse.

/// One scalar field value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A float (serialized with a decimal point or exponent so it
    /// re-parses as a float).
    F64(f64),
    /// An unsigned integer.
    U64(u64),
    /// A negative integer (non-negative integers parse as [`Value::U64`]).
    I64(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

impl PartialEq for Value {
    /// Bit-pattern equality for floats (so `NaN == NaN` and
    /// `-0.0 != 0.0`), structural equality elsewhere — exactly what an
    /// exact round-trip test needs.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::U64(a), Value::U64(b)) => a == b,
            (Value::I64(a), Value::I64(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::F64(v) => {
                if !v.is_finite() {
                    // Bare NaN/Infinity are not JSON; ship them as strings.
                    out.push('"');
                    if v.is_nan() {
                        out.push_str("NaN");
                    } else if *v > 0.0 {
                        out.push_str("Infinity");
                    } else {
                        out.push_str("-Infinity");
                    }
                    out.push('"');
                    return;
                }
                let s = format!("{v}");
                out.push_str(&s);
                // `{}` prints 1.0 as "1"; force a float marker so the
                // parser maps it back to F64.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(v) => write_json_string(v, out),
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One structured telemetry event: a kind tag plus ordered scalar fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Event {
    /// The event kind (serialized under the reserved `"event"` key).
    pub kind: String,
    /// Fields in insertion order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Creates an empty event of the given kind.
    pub fn new(kind: impl Into<String>) -> Self {
        Event {
            kind: kind.into(),
            fields: Vec::new(),
        }
    }

    /// Appends a float field.
    #[must_use]
    pub fn with_f64(mut self, name: impl Into<String>, v: f64) -> Self {
        self.fields.push((name.into(), Value::F64(v)));
        self
    }

    /// Appends an unsigned integer field.
    #[must_use]
    pub fn with_u64(mut self, name: impl Into<String>, v: u64) -> Self {
        self.fields.push((name.into(), Value::U64(v)));
        self
    }

    /// Appends a boolean field.
    #[must_use]
    pub fn with_bool(mut self, name: impl Into<String>, v: bool) -> Self {
        self.fields.push((name.into(), Value::Bool(v)));
        self
    }

    /// Appends a string field.
    #[must_use]
    pub fn with_str(mut self, name: impl Into<String>, v: impl Into<String>) -> Self {
        self.fields.push((name.into(), Value::Str(v.into())));
        self
    }

    /// The first field with this name, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Numeric field as f64 (floats and integers both coerce).
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Unsigned integer field.
    pub fn get_u64(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// String field.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        match self.get(name)? {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to one line of JSON (no trailing newline):
    /// `{"event":"kind","field":value,...}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.fields.len() * 16);
        out.push_str("{\"event\":");
        write_json_string(&self.kind, &mut out);
        for (name, value) in &self.fields {
            out.push(',');
            write_json_string(name, &mut out);
            out.push(':');
            value.write_json(&mut out);
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line produced by [`Event::to_json`] (a flat JSON
    /// object of scalars; the `"event"` key becomes [`Event::kind`]).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed JSON, nested values, `null`,
    /// or a missing/non-string `"event"` key.
    pub fn parse(line: &str) -> Result<Event, ParseError> {
        Parser::new(line).object()
    }
}

/// Error from [`Event::parse`] with a byte offset into the input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Minimal recursive-descent parser for the flat-object subset of JSON
/// that [`Event::to_json`] emits.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn object(&mut self) -> Result<Event, ParseError> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut kind: Option<String> = None;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                if key == "event" {
                    match self.value()? {
                        Value::Str(s) if kind.is_none() => kind = Some(s),
                        Value::Str(_) => return self.err("duplicate \"event\" key"),
                        _ => return self.err("\"event\" must be a string"),
                    }
                } else {
                    fields.push((key, self.value()?));
                }
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return self.err("expected ',' or '}'"),
                }
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return self.err("trailing input after object");
        }
        let Some(kind) = kind else {
            return self.err("missing \"event\" key");
        };
        Ok(Event { kind, fields })
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'{') | Some(b'[') => self.err("nested values are not supported"),
            Some(b'n') => self.err("null is not supported"),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            match text.parse::<f64>() {
                Ok(v) => Ok(Value::F64(v)),
                Err(_) => self.err(format!("invalid float '{text}'")),
            }
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::U64(v))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::I64(v))
        } else {
            self.err(format!("invalid integer '{text}'"))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("invalid \\u escape"),
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // continuation bytes are always well-formed).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).expect("input was a &str");
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_scalar_kinds() {
        let e = Event::new("probe")
            .with_u64("iteration", 17)
            .with_f64("reward", 0.123456789)
            .with_f64("whole", 4.0)
            .with_bool("ok", true)
            .with_str("name", "gp \"batch\"\n\ttab");
        let parsed = Event::parse(&e.to_json()).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for v in [
            0.1 + 0.2,
            f64::MIN_POSITIVE,
            -0.0,
            1e-300,
            123_456_789.123_456_79,
            f64::MAX,
        ] {
            let e = Event::new("f").with_f64("v", v);
            let parsed = Event::parse(&e.to_json()).unwrap();
            assert_eq!(parsed, e, "value {v:e}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let line = Event::new("f").with_f64("v", 2.0).to_json();
        assert!(line.contains("2.0"), "{line}");
        assert_eq!(
            Event::parse(&line).unwrap().get("v"),
            Some(&Value::F64(2.0))
        );
    }

    #[test]
    fn nonfinite_floats_become_strings() {
        let line = Event::new("f")
            .with_f64("nan", f64::NAN)
            .with_f64("inf", f64::INFINITY)
            .with_f64("ninf", f64::NEG_INFINITY)
            .to_json();
        let parsed = Event::parse(&line).unwrap();
        assert_eq!(parsed.get_str("nan"), Some("NaN"));
        assert_eq!(parsed.get_str("inf"), Some("Infinity"));
        assert_eq!(parsed.get_str("ninf"), Some("-Infinity"));
    }

    #[test]
    fn negative_integers_parse_as_i64() {
        let parsed = Event::parse(r#"{"event":"x","v":-3}"#).unwrap();
        assert_eq!(parsed.get("v"), Some(&Value::I64(-3)));
        assert_eq!(parsed.get_f64("v"), Some(-3.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            r#"{"event":"x""#,
            r#"{"event":"x","a":}"#,
            r#"{"event":"x","a":null}"#,
            r#"{"event":"x","a":[1]}"#,
            r#"{"event":"x","a":{"b":1}}"#,
            r#"{"a":1}"#,
            r#"{"event":1}"#,
            r#"{"event":"x"} trailing"#,
        ] {
            assert!(Event::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn field_accessors() {
        let e = Event::new("k").with_u64("n", 5).with_str("s", "v");
        assert_eq!(e.get_u64("n"), Some(5));
        assert_eq!(e.get_f64("n"), Some(5.0));
        assert_eq!(e.get_str("s"), Some("v"));
        assert_eq!(e.get("missing"), None);
    }

    #[test]
    fn parse_error_is_positioned() {
        let err = Event::parse(r#"{"event":"x","a":}"#).unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("at byte"));
    }
}
