//! Process-wide registry of named counters and duration histograms.
//!
//! Deep subsystems (the worker pool, the GP predictor, the controller)
//! cannot thread a [`crate::Trace`] handle through their call chains, so
//! they record here instead. The registry is guarded by a single global
//! flag: every entry point loads one relaxed atomic and branches, so with
//! tracing disabled (the default) instrumentation costs a predictable
//! not-taken branch and nothing else — no locks, no clocks, no
//! allocation.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns global telemetry collection on or off (off by default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether global telemetry collection is on. Hot paths gate on this:
/// one relaxed load and a branch when disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    hists: Mutex<BTreeMap<&'static str, Histogram>>,
}

fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        hists: Mutex::new(BTreeMap::new()),
    })
}

/// Adds `delta` to the named monotonic counter. No-op while telemetry is
/// disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut counters = global().counters.lock().unwrap_or_else(|e| e.into_inner());
    *counters.entry(name).or_insert(0) += delta;
}

/// Records a duration sample (nanoseconds) into the named histogram.
/// No-op while telemetry is disabled.
#[inline]
pub fn record_duration_ns(name: &'static str, nanos: u64) {
    if !enabled() {
        return;
    }
    let mut hists = global().hists.lock().unwrap_or_else(|e| e.into_inner());
    hists.entry(name).or_default().record(nanos);
}

/// RAII span timer from [`span`]: drops record the elapsed wall time into
/// the named registry histogram. When telemetry is disabled at
/// construction the guard holds no clock and the drop is free.
#[must_use = "a span records on drop; binding to _ drops it immediately"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// The histogram name this span records into.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            record_duration_ns(self.name, nanos);
        }
    }
}

/// Opens an RAII span timer over the named histogram.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(Instant::now),
    }
}

/// Point-in-time copy of every registry counter and histogram.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Duration histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl RegistrySnapshot {
    /// Value of a counter in this snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Per-counter difference `self - earlier` (clamped at 0), for
    /// expressing what one phase of a run contributed.
    pub fn counters_since(&self, earlier: &RegistrySnapshot) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.counter(n))))
            .collect()
    }
}

/// Copies out the current registry contents.
pub fn snapshot() -> RegistrySnapshot {
    let reg = global();
    let counters = reg
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(n, v)| (n.to_string(), *v))
        .collect();
    let histograms = reg
        .hists
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(n, h)| (n.to_string(), h.clone()))
        .collect();
    RegistrySnapshot {
        counters,
        histograms,
    }
}

/// Clears every registry counter and histogram (the enabled flag is left
/// untouched). Intended for tests and bench bins that report per-run
/// numbers.
pub fn reset() {
    let reg = global();
    reg.counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
    reg.hists.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry state is process-global and the enabled flag is shared, so
    // every assertion here is delta-based and re-enables around itself.

    #[test]
    fn disabled_paths_record_nothing() {
        set_enabled(false);
        let before = snapshot();
        counter_add("test.disabled.counter", 3);
        record_duration_ns("test.disabled.hist", 100);
        drop(span("test.disabled.span"));
        let after = snapshot();
        assert_eq!(
            after.counter("test.disabled.counter"),
            before.counter("test.disabled.counter")
        );
        assert!(
            after.histogram("test.disabled.hist").is_none()
                || before.histogram("test.disabled.hist").is_some()
        );
    }

    #[test]
    fn enabled_counters_and_spans_accumulate() {
        set_enabled(true);
        let before = snapshot();
        counter_add("test.enabled.counter", 2);
        counter_add("test.enabled.counter", 3);
        {
            let _s = span("test.enabled.span");
            std::hint::black_box(1 + 1);
        }
        record_duration_ns("test.enabled.hist", 1_000);
        let after = snapshot();
        set_enabled(false);
        assert_eq!(
            after.counter("test.enabled.counter") - before.counter("test.enabled.counter"),
            5
        );
        let span_count =
            |s: &RegistrySnapshot| s.histogram("test.enabled.span").map_or(0, |h| h.count());
        assert_eq!(span_count(&after) - span_count(&before), 1);
        let deltas = after.counters_since(&before);
        assert!(deltas
            .iter()
            .any(|(n, v)| n == "test.enabled.counter" && *v == 5));
    }
}
