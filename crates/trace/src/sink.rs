//! The buffered JSONL event sink behind a cloneable [`Trace`] handle.

use crate::event::Event;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

enum SinkImpl {
    Memory(Vec<String>),
    File(BufWriter<File>),
    Forward(Box<dyn FnMut(&str) + Send>),
}

struct Inner {
    sink: Mutex<SinkImpl>,
    emitted: AtomicU64,
}

/// A cloneable handle over a JSONL event sink.
///
/// Four flavors:
///
/// * [`Trace::disabled`] — every [`emit`](Trace::emit) is a no-op (one
///   `Option` check); the default everywhere, so tracing costs nothing
///   unless asked for.
/// * [`Trace::memory`] — events accumulate as lines in memory
///   ([`lines`](Trace::lines) reads them back); used by tests.
/// * [`Trace::to_path`] — events stream through a `BufWriter` to a file,
///   one JSON object per line; flushed on [`flush`](Trace::flush) and on
///   the last handle's drop.
/// * [`Trace::forward`] — each serialized line is handed to a callback
///   as it is emitted; used by the serving daemon to stream live
///   `search_iter` events to subscribed clients.
///
/// Clones share the same sink, so a session and its caller can both hold
/// the handle. Emission is serialized by an internal mutex; events from
/// concurrent threads interleave at line granularity (never mid-line).
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Trace(disabled)"),
            Some(inner) => write!(f, "Trace({} events)", inner.emitted.load(Ordering::Relaxed)),
        }
    }
}

impl Trace {
    /// A no-op trace: every emit returns immediately.
    pub fn disabled() -> Self {
        Trace { inner: None }
    }

    /// An in-memory trace; read back with [`lines`](Trace::lines).
    pub fn memory() -> Self {
        Trace {
            inner: Some(Arc::new(Inner {
                sink: Mutex::new(SinkImpl::Memory(Vec::new())),
                emitted: AtomicU64::new(0),
            })),
        }
    }

    /// A trace streaming JSONL to `path` (truncates any existing file).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the file cannot be created.
    pub fn to_path(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Trace {
            inner: Some(Arc::new(Inner {
                sink: Mutex::new(SinkImpl::File(BufWriter::new(file))),
                emitted: AtomicU64::new(0),
            })),
        })
    }

    /// A trace that pushes each serialized JSONL line into `f` as it is
    /// emitted. Lines arrive fully formed and in emission order; the
    /// callback runs under the sink mutex, so it must not emit into the
    /// same trace (it would deadlock) and should return quickly.
    pub fn forward(f: impl FnMut(&str) + Send + 'static) -> Self {
        Trace {
            inner: Some(Arc::new(Inner {
                sink: Mutex::new(SinkImpl::Forward(Box::new(f))),
                emitted: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this handle points at a real sink.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends one event as a JSONL line. No-op when disabled; file
    /// write errors are deliberately swallowed (telemetry must never
    /// abort the run it observes).
    pub fn emit(&self, event: Event) {
        let Some(inner) = &self.inner else {
            return;
        };
        let line = event.to_json();
        let mut sink = inner.sink.lock().unwrap_or_else(|e| e.into_inner());
        match &mut *sink {
            SinkImpl::Memory(lines) => lines.push(line),
            SinkImpl::File(w) => {
                let _ = writeln!(w, "{line}");
            }
            SinkImpl::Forward(f) => f(&line),
        }
        inner.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of events emitted through all clones of this handle.
    pub fn events_emitted(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.emitted.load(Ordering::Relaxed))
    }

    /// A copy of the buffered lines (memory sinks only; empty for
    /// disabled and file sinks).
    pub fn lines(&self) -> Vec<String> {
        match &self.inner {
            Some(inner) => {
                let sink = inner.sink.lock().unwrap_or_else(|e| e.into_inner());
                match &*sink {
                    SinkImpl::Memory(lines) => lines.clone(),
                    SinkImpl::File(_) | SinkImpl::Forward(_) => Vec::new(),
                }
            }
            None => Vec::new(),
        }
    }

    /// Flushes a file sink's buffer to disk (no-op otherwise).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let SinkImpl::File(w) = &mut *inner.sink.lock().unwrap_or_else(|e| e.into_inner()) {
                let _ = w.flush();
            }
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let SinkImpl::File(w) = self.sink.get_mut().unwrap_or_else(|e| e.into_inner()) {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_is_inert() {
        let t = Trace::disabled();
        t.emit(Event::new("x"));
        assert!(!t.is_enabled());
        assert_eq!(t.events_emitted(), 0);
        assert!(t.lines().is_empty());
        t.flush();
    }

    #[test]
    fn memory_trace_buffers_lines_in_order() {
        let t = Trace::memory();
        t.emit(Event::new("a").with_u64("i", 0));
        t.emit(Event::new("b").with_u64("i", 1));
        let lines = t.lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(Event::parse(&lines[0]).unwrap().kind, "a");
        assert_eq!(Event::parse(&lines[1]).unwrap().kind, "b");
        assert_eq!(t.events_emitted(), 2);
    }

    #[test]
    fn clones_share_the_sink() {
        let t = Trace::memory();
        let u = t.clone();
        u.emit(Event::new("shared"));
        assert_eq!(t.lines().len(), 1);
        assert_eq!(t.events_emitted(), 1);
    }

    #[test]
    fn file_trace_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join("yoso_trace_sink_test.jsonl");
        let t = Trace::to_path(&path).unwrap();
        t.emit(Event::new("iter").with_u64("i", 7).with_f64("r", 0.5));
        t.emit(Event::new("done"));
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let e = Event::parse(lines[0]).unwrap();
        assert_eq!(e.get_u64("i"), Some(7));
        drop(t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn forward_trace_streams_lines_in_emission_order() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let t = Trace::forward(move |line| sink.lock().unwrap().push(line.to_string()));
        t.emit(Event::new("a").with_u64("i", 0));
        t.emit(Event::new("b").with_u64("i", 1));
        assert_eq!(t.events_emitted(), 2);
        // Forward sinks do not buffer: lines() is empty, the callback saw all.
        assert!(t.lines().is_empty());
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(Event::parse(&seen[0]).unwrap().kind, "a");
        assert_eq!(Event::parse(&seen[1]).unwrap().kind, "b");
        // Forwarded lines are byte-identical to what a memory sink stores.
        let m = Trace::memory();
        m.emit(Event::new("a").with_u64("i", 0));
        assert_eq!(seen[0], m.lines()[0]);
    }

    #[test]
    fn drop_flushes_file_sink() {
        let path = std::env::temp_dir().join("yoso_trace_drop_test.jsonl");
        {
            let t = Trace::to_path(&path).unwrap();
            t.emit(Event::new("only"));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        std::fs::remove_file(&path).ok();
    }
}
