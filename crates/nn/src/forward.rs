//! Graph construction: turns a [`NetworkPlan`] plus a [`WeightProvider`]
//! into a differentiable forward pass.

use crate::weights::{ConvBn, OpWeights, WeightProvider};
use yoso_arch::{NetworkPlan, Op};
use yoso_tensor::{ConvGeom, Graph, ParamStore, Tensor, Var};

/// Applies ReLU → conv (stride `stride`) → BN as one fused tape node
/// (bit-identical to the unfused sequence; see `Graph::fused_conv_bn`).
fn conv_bn_relu(
    g: &mut Graph,
    store: &ParamStore,
    x: Var,
    w: ConvBn,
    k: usize,
    stride: usize,
) -> Var {
    let wv = g.param(store, w.w);
    let ga = g.param(store, w.gamma);
    let be = g.param(store, w.beta);
    g.fused_conv_bn(x, wv, ga, be, ConvGeom::same(k, stride), true)
}

/// Applies one candidate op on `x` with the given stride.
fn apply_op(
    g: &mut Graph,
    store: &ParamStore,
    x: Var,
    op: Op,
    weights: &OpWeights,
    stride: usize,
) -> Var {
    match (op, weights) {
        (Op::Conv3 | Op::Conv5, OpWeights::Conv(cb)) => {
            conv_bn_relu(g, store, x, *cb, op.kernel(), stride)
        }
        (Op::DwConv3 | Op::DwConv5, OpWeights::Sep(sc)) => {
            let r = g.relu(x);
            let dwv = g.param(store, sc.dw);
            let d = g.dwconv2d(r, dwv, ConvGeom::same(op.kernel(), stride));
            let pwv = g.param(store, sc.pw);
            let ga = g.param(store, sc.gamma);
            let be = g.param(store, sc.beta);
            g.fused_conv_bn(d, pwv, ga, be, ConvGeom::new(1, 1, 0), false)
        }
        (Op::MaxPool, OpWeights::Pool) => g.maxpool(x, ConvGeom::same(3, stride)),
        (Op::AvgPool, OpWeights::Pool) => g.avgpool(x, ConvGeom::same(3, stride)),
        (op, w) => panic!("op {op} paired with mismatched weights {w:?}"),
    }
}

/// Builds the full forward pass and returns the logits node `[n, classes]`.
///
/// # Panics
///
/// Panics if `input` does not match the plan's input shape, or the
/// provider returns mismatched weights.
pub fn forward_network<P: WeightProvider>(
    plan: &NetworkPlan,
    graph: &mut Graph,
    store: &ParamStore,
    provider: &P,
    input: Tensor,
) -> Var {
    let sk = &plan.skeleton;
    assert_eq!(
        &input.shape()[1..],
        &[sk.input_channels, sk.input_hw, sk.input_hw],
        "input shape mismatch"
    );
    let x = graph.input(input);
    // Stem: conv3x3 + BN (no leading ReLU on raw pixels).
    let stem = provider.stem();
    let wv = graph.param(store, stem.w);
    let ga = graph.param(store, stem.gamma);
    let be = graph.param(store, stem.beta);
    let stem_out = graph.fused_conv_bn(x, wv, ga, be, ConvGeom::same(3, 1), false);

    let mut s0 = stem_out;
    let mut s1 = stem_out;
    for cell in &plan.cells {
        let p0 = conv_bn_relu(
            graph,
            store,
            s0,
            provider.prep(cell.index, 0),
            1,
            cell.prep0_stride(),
        );
        let p1 = conv_bn_relu(graph, store, s1, provider.prep(cell.index, 1), 1, 1);
        let mut states = vec![p0, p1];
        for (ni, gene) in cell.genotype.nodes.iter().enumerate() {
            let node_idx = ni + 2;
            let mut halves = Vec::with_capacity(2);
            for (src, op) in [(gene.in1, gene.op1), (gene.in2, gene.op2)] {
                let stride = cell.op_stride(src);
                let w = provider.op(cell.index, node_idx, src, op);
                halves.push(apply_op(graph, store, states[src], op, &w, stride));
            }
            states.push(graph.add(halves[0], halves[1]));
        }
        let outs: Vec<Var> = cell
            .genotype
            .output_nodes()
            .into_iter()
            .map(|i| states[i])
            .collect();
        let out = graph.concat_channels(&outs);
        s0 = s1;
        s1 = out;
    }
    let pooled = graph.global_avg_pool(s1);
    let head = provider.head();
    let wv = graph.param(store, head.w);
    let bv = graph.param(store, head.b);
    graph.linear(pooled, wv, bv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CellNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yoso_arch::{Genotype, NetworkSkeleton};

    #[test]
    fn forward_shapes_match_plan() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            let geno = Genotype::random(&mut rng);
            let plan = NetworkSkeleton::tiny().compile(&geno);
            let net = CellNetwork::new(plan.clone(), 1);
            let mut g = Graph::new();
            let input = Tensor::randn(&[4, 3, 8, 8], 1.0, &mut rng);
            let logits = forward_network(&plan, &mut g, net.store(), net.provider(), input);
            assert_eq!(g.value(logits).shape(), &[4, 10]);
            assert!(g.value(logits).all_finite());
        }
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn wrong_input_shape_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let plan = NetworkSkeleton::tiny().compile(&Genotype::random(&mut rng));
        let net = CellNetwork::new(plan.clone(), 1);
        let mut g = Graph::new();
        let input = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let _ = forward_network(&plan, &mut g, net.store(), net.provider(), input);
    }
}
