//! Tape-free int8 inference for candidate scoring (DESIGN.md §9).
//!
//! Validation scoring during the search never needs gradients, so this
//! module runs a [`NetworkPlan`] forward with every dense convolution
//! (stem, 1x1 preps, 3x3/5x5 cell convs, the separable blocks'
//! pointwise convs) computed in int8: weights are quantized **once per
//! candidate** ([`QuantizedNetwork::prepare`]) to per-channel symmetric
//! i8, activations per-tensor to u8 on the fly, and the products
//! accumulated exactly in i32 by [`yoso_tensor::quant::gemm_q`].
//!
//! Everything that is cheap or precision-critical stays in f32:
//! depthwise kernels, pooling, residual adds, concatenation, the global
//! average pool and the classifier head. Batch normalization keeps the
//! f32 graph's semantics (batch statistics, biased variance, eps inside
//! the square root) but is *fused* with dequantization: each int8 GEMM
//! row already holds every value of one output channel, so the batch
//! statistics are computed exactly on the i32 accumulators and the
//! dequant + normalize steps collapse into one affine pass. The only
//! divergence from the f32 forward is the conv quantization error plus
//! sub-ulp summation-order differences in the BN statistics.
//!
//! The per-sample f32 im2col of the graph path becomes one *batched*
//! u8 column matrix here (`n = batch * h_out * w_out` columns), so each
//! layer is a single int8 GEMM — wider GEMMs amortize the weight loads
//! and feed the AVX-VNNI kernel long contiguous rows.

use crate::weights::{OpWeights, WeightProvider};
use yoso_arch::{NetworkPlan, Op};
use yoso_tensor::conv::{avgpool_forward, dwconv2d_forward, maxpool_forward, shape4};
use yoso_tensor::matmul::sgemm_a_bt_acc;
use yoso_tensor::quant::{gemm_q, im2col_u8_batch, quantize_activations_cm};
use yoso_tensor::{ConvGeom, ParamStore, QuantWeights, Tensor};

/// Default batch-norm epsilon, matching `Graph::new`.
const BN_EPS: f32 = 1e-5;

/// One conv + BN block with pre-quantized weights.
#[derive(Debug, Clone)]
struct QConvBn {
    /// `[cout, cin*k*k]` per-row symmetric int8 weights.
    w: QuantWeights,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    cin: usize,
    geom: ConvGeom,
}

impl QConvBn {
    fn prepare(store: &ParamStore, cb: crate::weights::ConvBn, geom: ConvGeom) -> Self {
        let w = store.value(cb.w);
        let (cout, cin, k, _) = shape4(w);
        debug_assert_eq!(k, geom.k);
        QConvBn {
            w: QuantWeights::quantize(w.data(), cout, cin * k * k),
            gamma: store.value(cb.gamma).data().to_vec(),
            beta: store.value(cb.beta).data().to_vec(),
            cin,
            geom,
        }
    }

    /// Quantized `[ReLU →] conv → BN`, mirroring `Graph::fused_conv_bn`:
    /// the optional ReLU is fused into activation quantization (clamping
    /// at the zero point), the conv runs as one batched int8 GEMM, and
    /// BN uses batch statistics on the dequantized output.
    fn forward(&self, x: &Tensor, pre_relu: bool, scratch: &mut QScratch) -> Tensor {
        let (n, cin, h, w) = shape4(x);
        assert_eq!(cin, self.cin, "qconv input channels");
        let g = self.geom;
        let (hout, wout) = (g.out_dim(h), g.out_dim(w));
        let hw_out = hout * wout;
        let cols_n = n * hw_out;
        let ckk = cin * g.k * g.k;
        let cout = self.w.rows();

        let x_scale = quantize_activations_cm(x.data(), n, cin, h * w, pre_relu, &mut scratch.qx);
        // The channel-major `[cin, n*hw]` activation matrix *is* the
        // column matrix of a 1x1 stride-1 conv; everything else lowers
        // into grow-only scratch (im2col and the GEMM overwrite every
        // element they use, so no clearing between layers).
        let one_by_one = g.k == 1 && g.stride == 1 && g.pad == 0;
        if !one_by_one {
            if scratch.col.len() < ckk * cols_n {
                scratch.col.resize(ckk * cols_n, 0);
            }
            im2col_u8_batch(&scratch.qx, n, cin, h, w, g, hout, wout, &mut scratch.col);
        }
        let bmat = if one_by_one {
            &scratch.qx[..ckk * cols_n]
        } else {
            &scratch.col[..ckk * cols_n]
        };
        if scratch.acc.len() < cout * cols_n {
            scratch.acc.resize(cout * cols_n, 0);
        }
        gemm_q(&self.w, bmat, cols_n, &mut scratch.acc[..cout * cols_n]);

        // Fused dequantize + batch norm. Each GEMM row `r` holds *all*
        // `n*hw` values of output channel `r` — exactly BN's reduction
        // axis — so the batch statistics come straight off the i32
        // accumulators (i64/f64 sums, exact and cheaper than a second
        // f32 pass), and dequant + normalize collapse into one affine
        // `v*a + b` pass per row. Same biased-variance + eps-inside-sqrt
        // semantics as [`batch_norm_forward`].
        let mut out = Tensor::zeros(&[n, cout, hout, wout]);
        {
            let od = out.data_mut();
            let scales = self.w.scales();
            let m = cols_n as f64;
            for r in 0..cout {
                let row = &scratch.acc[r * cols_n..(r + 1) * cols_n];
                let s = (scales[r] * x_scale) as f64;
                // Four partial accumulators per statistic: the f64 adds
                // are latency-bound on a single chain, and rows are tens
                // of thousands of elements. Integer partial sums are
                // exact in any grouping; the f64 sum-of-squares grouping
                // only moves sub-ulp rounding, which the module contract
                // already allows.
                let mut sums = [0i64; 4];
                let mut sqs = [0f64; 4];
                let mut chunks = row.chunks_exact(4);
                for ch in &mut chunks {
                    for (j, &v) in ch.iter().enumerate() {
                        sums[j] += v as i64;
                        let f = v as f64;
                        sqs[j] += f * f;
                    }
                }
                let mut sum: i64 = sums.iter().sum();
                let mut sumsq: f64 = sqs.iter().sum();
                for &v in chunks.remainder() {
                    sum += v as i64;
                    let f = v as f64;
                    sumsq += f * f;
                }
                let mean_q = sum as f64 / m;
                let var = s * s * (sumsq / m - mean_q * mean_q).max(0.0);
                let inv_std = 1.0 / (var + BN_EPS as f64).sqrt();
                let g = self.gamma[r] as f64;
                let a = (s * inv_std * g) as f32;
                let b = (self.beta[r] as f64 - s * mean_q * inv_std * g) as f32;
                for i in 0..n {
                    let dst = &mut od[(i * cout + r) * hw_out..(i * cout + r + 1) * hw_out];
                    for (o, v) in dst.iter_mut().zip(&row[i * hw_out..(i + 1) * hw_out]) {
                        *o = *v as f32 * a + b;
                    }
                }
            }
        }
        out
    }
}

/// One candidate op with weights resolved and convs pre-quantized.
#[derive(Debug, Clone)]
enum QOp {
    /// Dense conv: ReLU → int8 conv → BN.
    Conv(QConvBn),
    /// Separable: ReLU → f32 depthwise → int8 pointwise 1x1 → BN.
    Sep {
        dw: Tensor,
        geom: ConvGeom,
        pw: QConvBn,
    },
    /// 3x3 max pool.
    MaxPool(ConvGeom),
    /// 3x3 average pool.
    AvgPool(ConvGeom),
}

/// Per-cell prepared weights in forward-pass order.
#[derive(Debug, Clone)]
struct QCell {
    prep0: QConvBn,
    prep1: QConvBn,
    /// Two ops per internal node, in `(in1, op1), (in2, op2)` order.
    ops: Vec<QOp>,
}

/// Reused buffers for the quantized conv pipeline: activation bytes,
/// the batched u8 column matrix and the i32 GEMM accumulator.
#[derive(Debug, Default)]
struct QScratch {
    qx: Vec<u8>,
    col: Vec<u8>,
    acc: Vec<i32>,
}

thread_local! {
    /// Scoring runs one forward per candidate, so per-call scratch would
    /// re-grow (and re-fault) ~1.5 MB of buffers every candidate;
    /// keeping them thread-local amortizes that across the whole search.
    static QSCRATCH: std::cell::RefCell<QScratch> = std::cell::RefCell::new(QScratch::default());
}

/// A [`NetworkPlan`] with all dense-conv weights quantized up front,
/// ready for repeated int8 scoring passes over validation batches.
#[derive(Debug)]
pub struct QuantizedNetwork {
    plan: NetworkPlan,
    stem: QConvBn,
    cells: Vec<QCell>,
    /// `[classes, c_last]` f32 head weight.
    head_w: Vec<f32>,
    head_b: Vec<f32>,
    classes: usize,
}

impl QuantizedNetwork {
    /// Resolves every weight slot the plan needs from `provider` and
    /// quantizes the dense convolutions. This is the once-per-candidate
    /// cost; [`QuantizedNetwork::forward`] then reuses it per batch.
    ///
    /// # Panics
    ///
    /// Panics if the provider returns weights mismatching an op.
    pub fn prepare<P: WeightProvider>(
        plan: &NetworkPlan,
        store: &ParamStore,
        provider: &P,
    ) -> Self {
        let stem = QConvBn::prepare(store, provider.stem(), ConvGeom::same(3, 1));
        let mut cells = Vec::with_capacity(plan.cells.len());
        for cell in &plan.cells {
            let prep0 = QConvBn::prepare(
                store,
                provider.prep(cell.index, 0),
                ConvGeom::same(1, cell.prep0_stride()),
            );
            let prep1 = QConvBn::prepare(store, provider.prep(cell.index, 1), ConvGeom::same(1, 1));
            let mut ops = Vec::with_capacity(2 * cell.genotype.nodes.len());
            for (ni, gene) in cell.genotype.nodes.iter().enumerate() {
                let node_idx = ni + 2;
                for (src, op) in [(gene.in1, gene.op1), (gene.in2, gene.op2)] {
                    let stride = cell.op_stride(src);
                    let w = provider.op(cell.index, node_idx, src, op);
                    ops.push(match (op, w) {
                        (Op::Conv3 | Op::Conv5, OpWeights::Conv(cb)) => QOp::Conv(
                            QConvBn::prepare(store, cb, ConvGeom::same(op.kernel(), stride)),
                        ),
                        (Op::DwConv3 | Op::DwConv5, OpWeights::Sep(sc)) => QOp::Sep {
                            dw: store.value(sc.dw).clone(),
                            geom: ConvGeom::same(op.kernel(), stride),
                            pw: QConvBn::prepare(
                                store,
                                crate::weights::ConvBn {
                                    w: sc.pw,
                                    gamma: sc.gamma,
                                    beta: sc.beta,
                                },
                                ConvGeom::new(1, 1, 0),
                            ),
                        },
                        (Op::MaxPool, OpWeights::Pool) => QOp::MaxPool(ConvGeom::same(3, stride)),
                        (Op::AvgPool, OpWeights::Pool) => QOp::AvgPool(ConvGeom::same(3, stride)),
                        (op, w) => panic!("op {op} paired with mismatched weights {w:?}"),
                    });
                }
            }
            cells.push(QCell { prep0, prep1, ops });
        }
        let head = provider.head();
        QuantizedNetwork {
            plan: plan.clone(),
            stem,
            cells,
            head_w: store.value(head.w).data().to_vec(),
            head_b: store.value(head.b).data().to_vec(),
            classes: store.value(head.b).len(),
        }
    }

    /// Runs the int8 forward pass and returns logits `[n, classes]`.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the plan's input shape.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let sk = &self.plan.skeleton;
        assert_eq!(
            &input.shape()[1..],
            &[sk.input_channels, sk.input_hw, sk.input_hw],
            "input shape mismatch"
        );
        QSCRATCH.with(|s| self.forward_with(input, &mut s.borrow_mut()))
    }

    fn forward_with(&self, input: &Tensor, scratch: &mut QScratch) -> Tensor {
        let stem_out = self.stem.forward(input, false, scratch);
        let mut s0 = stem_out.clone();
        let mut s1 = stem_out;
        for (cell, qc) in self.plan.cells.iter().zip(&self.cells) {
            let p0 = qc.prep0.forward(&s0, true, scratch);
            let p1 = qc.prep1.forward(&s1, true, scratch);
            let mut states = vec![p0, p1];
            for (ni, gene) in cell.genotype.nodes.iter().enumerate() {
                let mut halves = Vec::with_capacity(2);
                for (oi, (src, _)) in [(gene.in1, gene.op1), (gene.in2, gene.op2)]
                    .into_iter()
                    .enumerate()
                {
                    let qop = &qc.ops[2 * ni + oi];
                    halves.push(apply_qop(qop, &states[src], scratch));
                }
                states.push(add(&halves[0], &halves[1]));
            }
            let outs: Vec<&Tensor> = cell
                .genotype
                .output_nodes()
                .into_iter()
                .map(|i| &states[i])
                .collect();
            let out = concat_channels(&outs);
            s0 = s1;
            s1 = out;
        }
        let pooled = global_avg_pool(&s1);
        let (n, c) = (pooled.shape()[0], pooled.shape()[1]);
        debug_assert_eq!(self.head_w.len(), self.classes * c);
        let mut logits = Tensor::zeros(&[n, self.classes]);
        sgemm_a_bt_acc(
            n,
            c,
            self.classes,
            pooled.data(),
            &self.head_w,
            logits.data_mut(),
        );
        for row in 0..n {
            for (o, bv) in logits.data_mut()[row * self.classes..(row + 1) * self.classes]
                .iter_mut()
                .zip(&self.head_b)
            {
                *o += bv;
            }
        }
        logits
    }
}

fn apply_qop(qop: &QOp, x: &Tensor, scratch: &mut QScratch) -> Tensor {
    match qop {
        QOp::Conv(cb) => cb.forward(x, true, scratch),
        QOp::Sep { dw, geom, pw } => {
            let r = relu(x);
            let d = dwconv2d_forward(&r, dw, *geom);
            pw.forward(&d, false, scratch)
        }
        QOp::MaxPool(g) => maxpool_forward(x, *g).0,
        QOp::AvgPool(g) => avgpool_forward(x, *g),
    }
}

fn relu(x: &Tensor) -> Tensor {
    // Single-pass build (no clone-then-rewrite): these element ops run
    // per candidate on megabytes of activations.
    Tensor::from_vec(x.shape(), x.data().iter().map(|v| v.max(0.0)).collect())
}

fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    Tensor::from_vec(
        a.shape(),
        a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect(),
    )
}

fn concat_channels(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat of zero tensors");
    let (n, _, h, w) = shape4(parts[0]);
    let mut c_total = 0;
    for p in parts {
        let (pn, pc, ph, pw) = shape4(p);
        assert_eq!((pn, ph, pw), (n, h, w), "concat mismatched dims");
        c_total += pc;
    }
    let mut data = Vec::with_capacity(n * c_total * h * w);
    for i in 0..n {
        for p in parts {
            let (_, pc, _, _) = shape4(p);
            data.extend_from_slice(&p.data()[i * pc * h * w..(i + 1) * pc * h * w]);
        }
    }
    Tensor::from_vec(&[n, c_total, h, w], data)
}

fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, c, h, w) = shape4(x);
    let mut out = Tensor::zeros(&[n, c]);
    let inv = 1.0 / (h * w) as f32;
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            let s: f32 = x.data()[base..base + h * w].iter().sum();
            out.data_mut()[i * c + ch] = s * inv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward_network;
    use crate::network::CellNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yoso_arch::{Genotype, NetworkSkeleton};
    use yoso_tensor::Graph;

    /// The int8 forward produces the right shapes and stays close to the
    /// f32 forward: with He-initialized weights the logit error from conv
    /// quantization alone is small relative to the logit spread.
    #[test]
    fn quantized_forward_tracks_f32_forward() {
        let mut rng = StdRng::seed_from_u64(0);
        for trial in 0..5 {
            let geno = Genotype::random(&mut rng);
            let plan = NetworkSkeleton::tiny().compile(&geno);
            let net = CellNetwork::new(plan.clone(), trial);
            let input = Tensor::randn(&[4, 3, 8, 8], 1.0, &mut rng);

            let mut g = Graph::new();
            let logits_f32 =
                forward_network(&plan, &mut g, net.store(), net.provider(), input.clone());
            let f32_vals = g.value(logits_f32).data().to_vec();

            let qnet = QuantizedNetwork::prepare(&plan, net.store(), net.provider());
            let logits_q = qnet.forward(&input);
            assert_eq!(logits_q.shape(), &[4, 10]);
            assert!(logits_q.all_finite());

            let spread = f32_vals
                .iter()
                .fold(0.0f32, |m, v| m.max(v.abs()))
                .max(1e-6);
            let max_err = f32_vals
                .iter()
                .zip(logits_q.data())
                .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()));
            assert!(
                max_err <= 0.35 * spread,
                "trial {trial}: quantized logits diverged: max_err {max_err}, spread {spread}"
            );
        }
    }

    /// Scoring is deterministic: two passes give identical bits.
    #[test]
    fn quantized_forward_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let plan = NetworkSkeleton::tiny().compile(&Genotype::random(&mut rng));
        let net = CellNetwork::new(plan.clone(), 1);
        let qnet = QuantizedNetwork::prepare(&plan, net.store(), net.provider());
        let input = Tensor::randn(&[3, 3, 8, 8], 1.0, &mut rng);
        let a = qnet.forward(&input);
        let b = qnet.forward(&input);
        assert_eq!(a.data(), b.data());
    }
}
