//! Standalone trainable network for a fixed genotype, with the SGD +
//! cosine-decay training loop used for final candidate evaluation
//! (paper step 3 / Fig. 5(b) ground truth).

use crate::forward::forward_network;
use crate::weights::{ConvBn, Head, OpWeights, WeightProvider};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use yoso_arch::{NetworkPlan, Op};
use yoso_dataset::{Split, SynthCifar};
use yoso_tensor::{accuracy, CosineLr, Graph, ParamStore, Sgd, Tensor};

/// Weight catalogue for one fixed genotype.
#[derive(Debug, Clone)]
pub struct StandaloneProvider {
    stem: ConvBn,
    preps: Vec<[ConvBn; 2]>,
    ops: HashMap<(usize, usize, usize, Op), OpWeights>,
    head: Head,
}

impl WeightProvider for StandaloneProvider {
    fn stem(&self) -> ConvBn {
        self.stem
    }
    fn prep(&self, cell: usize, which: usize) -> ConvBn {
        self.preps[cell][which]
    }
    fn op(&self, cell: usize, node: usize, src: usize, op: Op) -> OpWeights {
        self.ops[&(cell, node, src, op)]
    }
    fn head(&self) -> Head {
        self.head
    }
}

/// Training hyper-parameters (defaults mirror the paper's recipe scaled to
/// CPU: SGD momentum 0.9, L2 4e-5, cosine LR 0.05 → 0.0001).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr_max: f32,
    /// Final learning rate.
    pub lr_min: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Gradient-norm clip.
    pub grad_clip: f32,
    /// Apply random-crop/flip augmentation.
    pub augment: bool,
    /// Shuffling/augmentation seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            batch_size: 64,
            lr_max: 0.05,
            lr_min: 0.0001,
            momentum: 0.9,
            weight_decay: 4e-5,
            grad_clip: 5.0,
            augment: true,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests.
    pub fn fast_test() -> Self {
        TrainConfig {
            epochs: 3,
            batch_size: 32,
            lr_max: 0.1,
            augment: false,
            ..Default::default()
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStat {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f64,
    /// Mean training accuracy.
    pub train_acc: f64,
    /// Validation accuracy after the epoch.
    pub val_acc: f64,
}

/// Full training record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainHistory {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStat>,
    /// Final validation accuracy.
    pub final_val_acc: f64,
    /// Final test accuracy.
    pub final_test_acc: f64,
}

/// A trainable network instantiating one genotype.
#[derive(Debug, Clone)]
pub struct CellNetwork {
    plan: NetworkPlan,
    store: ParamStore,
    provider: StandaloneProvider,
}

impl CellNetwork {
    /// Allocates weights for the plan's genotype.
    pub fn new(plan: NetworkPlan, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let sk = &plan.skeleton;
        let stem = ConvBn::alloc(&mut store, sk.input_channels, sk.init_channels, 3, &mut rng);
        let mut preps = Vec::with_capacity(plan.cells.len());
        let mut ops = HashMap::new();
        for cell in &plan.cells {
            preps.push([
                ConvBn::alloc(&mut store, cell.c_in0, cell.c, 1, &mut rng),
                ConvBn::alloc(&mut store, cell.c_in1, cell.c, 1, &mut rng),
            ]);
            for (ni, gene) in cell.genotype.nodes.iter().enumerate() {
                let node = ni + 2;
                for (src, op) in [(gene.in1, gene.op1), (gene.in2, gene.op2)] {
                    ops.entry((cell.index, node, src, op))
                        .or_insert_with(|| OpWeights::alloc(&mut store, op, cell.c, &mut rng));
                }
            }
        }
        let c_last = plan.final_channels();
        let head = Head {
            w: store.add(Tensor::he_normal(
                &[sk.num_classes, c_last],
                c_last,
                &mut rng,
            )),
            b: store.add(Tensor::zeros(&[sk.num_classes])),
        };
        let provider = StandaloneProvider {
            stem,
            preps,
            ops,
            head,
        };
        CellNetwork {
            plan,
            store,
            provider,
        }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &NetworkPlan {
        &self.plan
    }

    /// The parameter store.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// The weight provider.
    pub fn provider(&self) -> &StandaloneProvider {
        &self.provider
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.store.total_elems()
    }

    /// Computes logits for a batch of images.
    pub fn logits(&self, images: Tensor) -> Tensor {
        let mut g = Graph::new();
        let out = forward_network(&self.plan, &mut g, &self.store, &self.provider, images);
        g.value(out).clone()
    }

    /// Accuracy over an entire split (BN uses per-batch statistics, the
    /// one-shot-NAS convention; use a batch size ≥ 32 for stable results).
    pub fn evaluate(&self, split: &Split, batch_size: usize) -> f64 {
        evaluate_with(split, batch_size, |images| self.logits(images))
    }

    /// Trains in place and returns the history.
    pub fn train(&mut self, data: &SynthCifar, cfg: &TrainConfig) -> TrainHistory {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut opt = Sgd::new(cfg.lr_max, cfg.momentum, cfg.weight_decay);
        let steps_per_epoch = (data.train.len() / cfg.batch_size).max(1);
        let sched = CosineLr::new(cfg.lr_max, cfg.lr_min, cfg.epochs * steps_per_epoch);
        let mut history = TrainHistory::default();
        let mut step = 0usize;
        for epoch in 0..cfg.epochs {
            let mut loss_sum = 0.0f64;
            let mut acc_sum = 0.0f64;
            let batches = data.train.epoch_batches(cfg.batch_size, &mut rng);
            let nb = batches.len().max(1);
            for idx in &batches {
                let (images, labels) = if cfg.augment {
                    data.train.batch_augmented(idx, &mut rng)
                } else {
                    data.train.batch(idx)
                };
                opt.lr = sched.lr(step);
                step += 1;
                let mut g = Graph::new();
                let logits =
                    forward_network(&self.plan, &mut g, &self.store, &self.provider, images);
                let loss = g.softmax_cross_entropy(logits, &labels);
                loss_sum += g.value(loss).data()[0] as f64;
                acc_sum += accuracy(g.value(logits), &labels);
                self.store.zero_grads();
                g.backward(loss, &mut self.store);
                self.store.clip_grad_norm(cfg.grad_clip);
                opt.step(&mut self.store);
            }
            let val_acc = self.evaluate(&data.val, cfg.batch_size.max(32));
            history.epochs.push(EpochStat {
                epoch,
                train_loss: loss_sum / nb as f64,
                train_acc: acc_sum / nb as f64,
                val_acc,
            });
        }
        history.final_val_acc = history.epochs.last().map_or(0.0, |e| e.val_acc);
        history.final_test_acc = self.evaluate(&data.test, cfg.batch_size.max(32));
        history
    }
}

/// Shared evaluation loop: runs `logits_fn` over the split in fixed-size
/// batches and averages accuracy (weighted by batch size).
pub fn evaluate_with(
    split: &Split,
    batch_size: usize,
    mut logits_fn: impl FnMut(Tensor) -> Tensor,
) -> f64 {
    let n = split.len();
    if n == 0 {
        return 0.0;
    }
    let bs = batch_size.max(1);
    let mut correct_weighted = 0.0;
    let mut total = 0usize;
    let mut i = 0;
    while i < n {
        let end = (i + bs).min(n);
        let idx: Vec<usize> = (i..end).collect();
        let (images, labels) = split.batch(&idx);
        let logits = logits_fn(images);
        correct_weighted += accuracy(&logits, &labels) * idx.len() as f64;
        total += idx.len();
        i = end;
    }
    correct_weighted / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use yoso_arch::{Genotype, NetworkSkeleton};
    use yoso_dataset::SynthCifarConfig;

    #[test]
    fn network_trains_above_chance() {
        let mut rng = StdRng::seed_from_u64(0);
        let plan = NetworkSkeleton::tiny().compile(&Genotype::random(&mut rng));
        let data = SynthCifar::generate(&SynthCifarConfig::tiny());
        let mut net = CellNetwork::new(plan, 0);
        let hist = net.train(&data, &TrainConfig::fast_test());
        assert_eq!(hist.epochs.len(), 3);
        // 10 classes => chance is 0.1; a trained net must beat it clearly.
        assert!(
            hist.final_val_acc > 0.25,
            "val acc {} too low",
            hist.final_val_acc
        );
        // Loss decreased over training.
        assert!(hist.epochs.last().unwrap().train_loss < hist.epochs[0].train_loss);
    }

    #[test]
    fn param_count_scales_with_genotype() {
        let mut rng = StdRng::seed_from_u64(1);
        let sk = NetworkSkeleton::tiny();
        let a = CellNetwork::new(sk.compile(&Genotype::random(&mut rng)), 0);
        assert!(a.param_count() > 1000);
    }

    #[test]
    fn logits_deterministic() {
        let mut rng = StdRng::seed_from_u64(2);
        let plan = NetworkSkeleton::tiny().compile(&Genotype::random(&mut rng));
        let net = CellNetwork::new(plan, 3);
        let x = Tensor::randn(&[4, 3, 8, 8], 1.0, &mut rng);
        assert_eq!(net.logits(x.clone()).data(), net.logits(x).data());
    }

    #[test]
    fn evaluate_empty_split_is_zero() {
        let data = SynthCifar::generate(&SynthCifarConfig::tiny());
        let mut rng = StdRng::seed_from_u64(4);
        let plan = NetworkSkeleton::tiny().compile(&Genotype::random(&mut rng));
        let net = CellNetwork::new(plan, 0);
        // Evaluate on a small batch size to exercise the batching loop.
        let acc = net.evaluate(&data.val, 17);
        assert!((0.0..=1.0).contains(&acc));
    }
}
