//! Weight containers and the provider abstraction shared by standalone
//! networks and the weight-sharing HyperNet.

use rand::Rng;
use yoso_arch::Op;
use yoso_tensor::{ParamId, ParamStore, Tensor};

/// Weights of a conv + batch-norm block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvBn {
    /// Convolution kernel `[cout, cin, k, k]`.
    pub w: ParamId,
    /// BN scale `[cout]`.
    pub gamma: ParamId,
    /// BN shift `[cout]`.
    pub beta: ParamId,
}

impl ConvBn {
    /// Allocates a conv+BN block with He init.
    pub fn alloc<R: Rng + ?Sized>(
        store: &mut ParamStore,
        cin: usize,
        cout: usize,
        k: usize,
        rng: &mut R,
    ) -> Self {
        ConvBn {
            w: store.add(Tensor::he_normal(&[cout, cin, k, k], cin * k * k, rng)),
            gamma: store.add(Tensor::ones(&[cout])),
            beta: store.add(Tensor::zeros(&[cout])),
        }
    }
}

/// Weights of a depthwise-separable conv block (dw + pointwise + BN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SepConv {
    /// Depthwise kernel `[c, k, k]`.
    pub dw: ParamId,
    /// Pointwise kernel `[c, c, 1, 1]`.
    pub pw: ParamId,
    /// BN scale `[c]`.
    pub gamma: ParamId,
    /// BN shift `[c]`.
    pub beta: ParamId,
}

impl SepConv {
    /// Allocates a separable-conv block with He init.
    pub fn alloc<R: Rng + ?Sized>(store: &mut ParamStore, c: usize, k: usize, rng: &mut R) -> Self {
        SepConv {
            dw: store.add(Tensor::he_normal(&[c, k, k], k * k, rng)),
            pw: store.add(Tensor::he_normal(&[c, c, 1, 1], c, rng)),
            gamma: store.add(Tensor::ones(&[c])),
            beta: store.add(Tensor::zeros(&[c])),
        }
    }
}

/// Weights of one candidate operation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpWeights {
    /// Dense convolution (3x3 / 5x5).
    Conv(ConvBn),
    /// Depthwise-separable convolution.
    Sep(SepConv),
    /// Pooling: no weights.
    Pool,
}

impl OpWeights {
    /// Allocates weights appropriate for `op` on `c` channels.
    pub fn alloc<R: Rng + ?Sized>(store: &mut ParamStore, op: Op, c: usize, rng: &mut R) -> Self {
        match op {
            Op::Conv3 | Op::Conv5 => OpWeights::Conv(ConvBn::alloc(store, c, c, op.kernel(), rng)),
            Op::DwConv3 | Op::DwConv5 => OpWeights::Sep(SepConv::alloc(store, c, op.kernel(), rng)),
            Op::MaxPool | Op::AvgPool => OpWeights::Pool,
        }
    }
}

/// Classifier head weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Head {
    /// Linear weight `[classes, c]`.
    pub w: ParamId,
    /// Linear bias `[classes]`.
    pub b: ParamId,
}

/// Supplies weights for every slot the network forward pass needs.
///
/// The standalone [`CellNetwork`](crate::network::CellNetwork) allocates
/// one weight set for its fixed genotype; the HyperNet supplies shared
/// weights indexed by `(cell, node, source, op)` so that any sub-model
/// inherits them.
pub trait WeightProvider {
    /// Stem conv + BN.
    fn stem(&self) -> ConvBn;
    /// Preprocessing 1x1 conv for cell `cell`, input `which` (0 or 1).
    fn prep(&self, cell: usize, which: usize) -> ConvBn;
    /// Weights of the op applied on the edge `src -> node` in `cell`.
    fn op(&self, cell: usize, node: usize, src: usize, op: Op) -> OpWeights;
    /// Classifier head.
    fn head(&self) -> Head;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alloc_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let cb = ConvBn::alloc(&mut store, 3, 8, 3, &mut rng);
        assert_eq!(store.value(cb.w).shape(), &[8, 3, 3, 3]);
        assert_eq!(store.value(cb.gamma).data(), &[1.0; 8]);
        let sc = SepConv::alloc(&mut store, 4, 5, &mut rng);
        assert_eq!(store.value(sc.dw).shape(), &[4, 5, 5]);
        assert_eq!(store.value(sc.pw).shape(), &[4, 4, 1, 1]);
    }

    #[test]
    fn op_weights_variants() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        assert!(matches!(
            OpWeights::alloc(&mut store, Op::Conv5, 8, &mut rng),
            OpWeights::Conv(_)
        ));
        assert!(matches!(
            OpWeights::alloc(&mut store, Op::DwConv3, 8, &mut rng),
            OpWeights::Sep(_)
        ));
        assert!(matches!(
            OpWeights::alloc(&mut store, Op::MaxPool, 8, &mut rng),
            OpWeights::Pool
        ));
    }
}
