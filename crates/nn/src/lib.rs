//! # yoso-nn
//!
//! Trainable cell networks on top of `yoso-tensor`: a genotype compiled by
//! `yoso-arch` becomes a differentiable forward graph (stem → cells →
//! global pool → classifier), with DARTS-style cell plumbing (ReLU-Conv-BN
//! op blocks, 1x1 input preprocessing, factorized reduce at resolution
//! boundaries).
//!
//! The [`WeightProvider`] abstraction decouples graph construction from
//! weight storage so the standalone [`CellNetwork`] and the weight-sharing
//! HyperNet (`yoso-hypernet`) share exactly one forward implementation —
//! which is what makes weight inheritance meaningful.
//!
//! ## Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use yoso_arch::{Genotype, NetworkSkeleton};
//! use yoso_nn::CellNetwork;
//! use yoso_tensor::Tensor;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let plan = NetworkSkeleton::tiny().compile(&Genotype::random(&mut rng));
//! let net = CellNetwork::new(plan, 0);
//! let logits = net.logits(Tensor::zeros(&[2, 3, 8, 8]));
//! assert_eq!(logits.shape(), &[2, 10]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forward;
pub mod network;
pub mod qforward;
pub mod weights;

pub use forward::forward_network;
pub use network::{evaluate_with, CellNetwork, EpochStat, TrainConfig, TrainHistory};
pub use qforward::QuantizedNetwork;
pub use weights::{ConvBn, Head, OpWeights, SepConv, WeightProvider};
