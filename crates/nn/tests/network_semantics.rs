//! Semantic tests of the cell-network builder: weight sharing, gradient
//! flow and architectural sensitivity.

use rand::rngs::StdRng;
use rand::SeedableRng;
use yoso_arch::{CellGenotype, Genotype, NetworkSkeleton, NodeGene, Op};
use yoso_dataset::{SynthCifar, SynthCifarConfig};
use yoso_nn::{forward_network, CellNetwork, TrainConfig};
use yoso_tensor::{Graph, Tensor};

fn uniform_cell(op: Op) -> CellGenotype {
    let g = NodeGene {
        in1: 0,
        op1: op,
        in2: 1,
        op2: op,
    };
    CellGenotype { nodes: [g; 5] }
}

/// One training step must touch (give gradient to) the stem, every cell's
/// preprocessing convs and the classifier.
#[test]
fn gradient_reaches_all_structural_weights() {
    let mut rng = StdRng::seed_from_u64(0);
    let plan = NetworkSkeleton::tiny().compile(&Genotype::random(&mut rng));
    let net = CellNetwork::new(plan.clone(), 0);
    let mut store = net.store().clone();
    let mut g = Graph::new();
    let x = g.input(Tensor::randn(&[4, 3, 8, 8], 1.0, &mut rng));
    let logits = forward_network(&plan, &mut g, &store, net.provider(), {
        // forward_network takes the tensor; rebuild input here.
        Tensor::randn(&[4, 3, 8, 8], 1.0, &mut rng)
    });
    let _ = x;
    let loss = g.softmax_cross_entropy(logits, &[0, 1, 2, 3]);
    store.zero_grads();
    g.backward(loss, &mut store);
    // Structural weights: stem conv + every prep conv + classifier.
    let stem = net.provider().stem();
    assert!(store.grad(stem.w).sq_norm() > 0.0, "stem got no gradient");
    use yoso_nn::WeightProvider;
    for cell in &plan.cells {
        for which in 0..2 {
            let prep = net.provider().prep(cell.index, which);
            assert!(
                store.grad(prep.w).sq_norm() > 0.0,
                "cell {} prep{} got no gradient",
                cell.index,
                which
            );
        }
    }
    let head = net.provider().head();
    assert!(store.grad(head.w).sq_norm() > 0.0);
    assert!(store.grad(head.b).sq_norm() > 0.0);
}

/// Identical (src, op) pairs inside one node share weights in the
/// standalone provider (documented coalescing behaviour).
#[test]
fn duplicate_edges_share_weights() {
    use yoso_nn::WeightProvider;
    let cell = uniform_cell(Op::Conv3);
    let geno = Genotype {
        normal: cell,
        reduction: cell,
    };
    let plan = NetworkSkeleton::tiny().compile(&geno);
    let net = CellNetwork::new(plan, 0);
    // Node 2 uses (0, Conv3) and (1, Conv3); node 3 reuses both sources.
    let a = net.provider().op(0, 2, 0, Op::Conv3);
    let b = net.provider().op(0, 3, 0, Op::Conv3);
    // Different nodes get different weights...
    assert_ne!(format!("{a:?}"), format!("{b:?}"));
    // ...but the same (node, src, op) is one weight set.
    let a2 = net.provider().op(0, 2, 0, Op::Conv3);
    assert_eq!(format!("{a:?}"), format!("{a2:?}"));
}

/// Pool-only networks have far fewer parameters than conv-only ones.
#[test]
fn parameter_count_tracks_op_mix() {
    let sk = NetworkSkeleton::tiny();
    let conv_net = CellNetwork::new(
        sk.compile(&Genotype {
            normal: uniform_cell(Op::Conv5),
            reduction: uniform_cell(Op::Conv5),
        }),
        0,
    );
    let pool_net = CellNetwork::new(
        sk.compile(&Genotype {
            normal: uniform_cell(Op::MaxPool),
            reduction: uniform_cell(Op::MaxPool),
        }),
        0,
    );
    assert!(
        conv_net.param_count() > 3 * pool_net.param_count(),
        "conv {} vs pool {}",
        conv_net.param_count(),
        pool_net.param_count()
    );
}

/// Augmented training still learns (the augmentation pipeline is not
/// destroying the labels).
#[test]
fn augmented_training_learns() {
    let mut rng = StdRng::seed_from_u64(5);
    let plan = NetworkSkeleton::tiny().compile(&Genotype::random(&mut rng));
    let data = SynthCifar::generate(&SynthCifarConfig::tiny());
    let mut net = CellNetwork::new(plan, 1);
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 32,
        augment: true,
        lr_max: 0.1,
        ..Default::default()
    };
    let hist = net.train(&data, &cfg);
    assert!(
        hist.final_val_acc > 0.2,
        "augmented training stuck at {}",
        hist.final_val_acc
    );
}

/// Two networks with the same genotype but different seeds train to
/// different weights yet similar accuracy (initialization robustness).
#[test]
fn seed_robustness() {
    let mut rng = StdRng::seed_from_u64(7);
    let plan = NetworkSkeleton::tiny().compile(&Genotype::random(&mut rng));
    let data = SynthCifar::generate(&SynthCifarConfig::tiny());
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 32,
        augment: false,
        lr_max: 0.1,
        ..Default::default()
    };
    let mut n1 = CellNetwork::new(plan.clone(), 100);
    let mut n2 = CellNetwork::new(plan, 200);
    let h1 = n1.train(&data, &cfg);
    let h2 = n2.train(&data, &cfg);
    assert!((h1.final_val_acc - h2.final_val_acc).abs() < 0.45);
    assert!(h1.final_val_acc > 0.15 && h2.final_val_acc > 0.15);
}
