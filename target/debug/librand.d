/root/repo/target/debug/librand.rlib: /root/repo/third_party/rand/src/lib.rs
