/root/repo/target/debug/libcriterion.rlib: /root/repo/third_party/criterion/src/lib.rs
