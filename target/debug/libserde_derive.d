/root/repo/target/debug/libserde_derive.so: /root/repo/third_party/serde_derive/src/lib.rs
