/root/repo/target/debug/examples/evolution_vs_rl-69eab972e8056a1c.d: examples/evolution_vs_rl.rs

/root/repo/target/debug/examples/evolution_vs_rl-69eab972e8056a1c: examples/evolution_vs_rl.rs

examples/evolution_vs_rl.rs:
