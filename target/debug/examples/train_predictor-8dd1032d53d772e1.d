/root/repo/target/debug/examples/train_predictor-8dd1032d53d772e1.d: examples/train_predictor.rs

/root/repo/target/debug/examples/train_predictor-8dd1032d53d772e1: examples/train_predictor.rs

examples/train_predictor.rs:
