/root/repo/target/debug/examples/evolution_vs_rl-29282ed0cb81b3e6.d: examples/evolution_vs_rl.rs Cargo.toml

/root/repo/target/debug/examples/libevolution_vs_rl-29282ed0cb81b3e6.rmeta: examples/evolution_vs_rl.rs Cargo.toml

examples/evolution_vs_rl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
