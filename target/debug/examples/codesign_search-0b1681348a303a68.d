/root/repo/target/debug/examples/codesign_search-0b1681348a303a68.d: examples/codesign_search.rs Cargo.toml

/root/repo/target/debug/examples/libcodesign_search-0b1681348a303a68.rmeta: examples/codesign_search.rs Cargo.toml

examples/codesign_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
