/root/repo/target/debug/examples/accelerator_explore-feef2bc68a903f31.d: examples/accelerator_explore.rs

/root/repo/target/debug/examples/accelerator_explore-feef2bc68a903f31: examples/accelerator_explore.rs

examples/accelerator_explore.rs:
