/root/repo/target/debug/examples/accelerator_explore-16692356b3de2ae0.d: examples/accelerator_explore.rs Cargo.toml

/root/repo/target/debug/examples/libaccelerator_explore-16692356b3de2ae0.rmeta: examples/accelerator_explore.rs Cargo.toml

examples/accelerator_explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
