/root/repo/target/debug/examples/quickstart-b276262716aa76ed.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b276262716aa76ed.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
