/root/repo/target/debug/examples/train_predictor-90a988ba3626a8f5.d: examples/train_predictor.rs Cargo.toml

/root/repo/target/debug/examples/libtrain_predictor-90a988ba3626a8f5.rmeta: examples/train_predictor.rs Cargo.toml

examples/train_predictor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
