/root/repo/target/debug/examples/quickstart-b06ea4f677641195.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b06ea4f677641195: examples/quickstart.rs

examples/quickstart.rs:
