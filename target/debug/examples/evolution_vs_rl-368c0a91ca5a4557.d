/root/repo/target/debug/examples/evolution_vs_rl-368c0a91ca5a4557.d: examples/evolution_vs_rl.rs

/root/repo/target/debug/examples/evolution_vs_rl-368c0a91ca5a4557: examples/evolution_vs_rl.rs

examples/evolution_vs_rl.rs:
