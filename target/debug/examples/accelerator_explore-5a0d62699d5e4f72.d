/root/repo/target/debug/examples/accelerator_explore-5a0d62699d5e4f72.d: examples/accelerator_explore.rs

/root/repo/target/debug/examples/accelerator_explore-5a0d62699d5e4f72: examples/accelerator_explore.rs

examples/accelerator_explore.rs:
