/root/repo/target/debug/examples/quickstart-ff4952a221877ff4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ff4952a221877ff4: examples/quickstart.rs

examples/quickstart.rs:
