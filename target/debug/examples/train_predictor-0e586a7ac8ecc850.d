/root/repo/target/debug/examples/train_predictor-0e586a7ac8ecc850.d: examples/train_predictor.rs

/root/repo/target/debug/examples/train_predictor-0e586a7ac8ecc850: examples/train_predictor.rs

examples/train_predictor.rs:
