/root/repo/target/debug/examples/codesign_search-4f6e59652ba20993.d: examples/codesign_search.rs

/root/repo/target/debug/examples/codesign_search-4f6e59652ba20993: examples/codesign_search.rs

examples/codesign_search.rs:
