/root/repo/target/debug/examples/codesign_search-a145901dfd7e2f65.d: examples/codesign_search.rs

/root/repo/target/debug/examples/codesign_search-a145901dfd7e2f65: examples/codesign_search.rs

examples/codesign_search.rs:
