/root/repo/target/debug/libproptest.rlib: /root/repo/third_party/proptest/src/lib.rs /root/repo/third_party/rand/src/lib.rs
