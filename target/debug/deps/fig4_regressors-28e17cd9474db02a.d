/root/repo/target/debug/deps/fig4_regressors-28e17cd9474db02a.d: crates/bench/src/bin/fig4_regressors.rs

/root/repo/target/debug/deps/fig4_regressors-28e17cd9474db02a: crates/bench/src/bin/fig4_regressors.rs

crates/bench/src/bin/fig4_regressors.rs:
