/root/repo/target/debug/deps/rand-c2ef9a46a1cd17ec.d: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c2ef9a46a1cd17ec.rlib: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c2ef9a46a1cd17ec.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
