/root/repo/target/debug/deps/fig6_search-9c5e3c22b75259d3.d: crates/bench/src/bin/fig6_search.rs

/root/repo/target/debug/deps/fig6_search-9c5e3c22b75259d3: crates/bench/src/bin/fig6_search.rs

crates/bench/src/bin/fig6_search.rs:
