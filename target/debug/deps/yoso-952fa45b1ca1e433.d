/root/repo/target/debug/deps/yoso-952fa45b1ca1e433.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libyoso-952fa45b1ca1e433.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
