/root/repo/target/debug/deps/property_invariants-473560022a900352.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-473560022a900352: tests/property_invariants.rs

tests/property_invariants.rs:
