/root/repo/target/debug/deps/yoso_controller-490029e575d646ac.d: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_controller-490029e575d646ac.rmeta: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs Cargo.toml

crates/controller/src/lib.rs:
crates/controller/src/lstm.rs:
crates/controller/src/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
