/root/repo/target/debug/deps/fig5_hypernet-9e88a73514254e9c.d: crates/bench/src/bin/fig5_hypernet.rs

/root/repo/target/debug/deps/fig5_hypernet-9e88a73514254e9c: crates/bench/src/bin/fig5_hypernet.rs

crates/bench/src/bin/fig5_hypernet.rs:
