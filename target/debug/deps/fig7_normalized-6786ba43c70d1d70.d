/root/repo/target/debug/deps/fig7_normalized-6786ba43c70d1d70.d: crates/bench/src/bin/fig7_normalized.rs

/root/repo/target/debug/deps/fig7_normalized-6786ba43c70d1d70: crates/bench/src/bin/fig7_normalized.rs

crates/bench/src/bin/fig7_normalized.rs:
