/root/repo/target/debug/deps/pipeline_integration-eeea3afa1e72884c.d: tests/pipeline_integration.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_integration-eeea3afa1e72884c.rmeta: tests/pipeline_integration.rs Cargo.toml

tests/pipeline_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
