/root/repo/target/debug/deps/yoso_bench-b890c3d851ed64b0.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_bench-b890c3d851ed64b0.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
