/root/repo/target/debug/deps/yoso_accel-9ba7c54fb75656e1.d: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/libyoso_accel-9ba7c54fb75656e1.rlib: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/libyoso_accel-9ba7c54fb75656e1.rmeta: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

crates/accel/src/lib.rs:
crates/accel/src/cache.rs:
crates/accel/src/cost.rs:
crates/accel/src/report.rs:
crates/accel/src/sim.rs:
