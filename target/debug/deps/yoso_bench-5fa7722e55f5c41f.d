/root/repo/target/debug/deps/yoso_bench-5fa7722e55f5c41f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libyoso_bench-5fa7722e55f5c41f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libyoso_bench-5fa7722e55f5c41f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
