/root/repo/target/debug/deps/fig5_hypernet-77a20e12e2db59a2.d: crates/bench/src/bin/fig5_hypernet.rs

/root/repo/target/debug/deps/fig5_hypernet-77a20e12e2db59a2: crates/bench/src/bin/fig5_hypernet.rs

crates/bench/src/bin/fig5_hypernet.rs:
