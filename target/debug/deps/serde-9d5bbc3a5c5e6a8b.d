/root/repo/target/debug/deps/serde-9d5bbc3a5c5e6a8b.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/serde-9d5bbc3a5c5e6a8b: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
