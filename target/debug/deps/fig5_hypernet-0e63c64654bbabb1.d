/root/repo/target/debug/deps/fig5_hypernet-0e63c64654bbabb1.d: crates/bench/src/bin/fig5_hypernet.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_hypernet-0e63c64654bbabb1.rmeta: crates/bench/src/bin/fig5_hypernet.rs Cargo.toml

crates/bench/src/bin/fig5_hypernet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
