/root/repo/target/debug/deps/yoso_accel-f065ecf8ae2300a2.d: crates/accel/src/lib.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/yoso_accel-f065ecf8ae2300a2: crates/accel/src/lib.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

crates/accel/src/lib.rs:
crates/accel/src/cost.rs:
crates/accel/src/report.rs:
crates/accel/src/sim.rs:
