/root/repo/target/debug/deps/yoso_core-6e91606a68e33bc7.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

/root/repo/target/debug/deps/libyoso_core-6e91606a68e33bc7.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

/root/repo/target/debug/deps/libyoso_core-6e91606a68e33bc7.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/evaluation.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/reward.rs:
crates/core/src/search.rs:
crates/core/src/twostage.rs:
