/root/repo/target/debug/deps/regressor_contracts-d75a80f1653662f6.d: crates/predictor/tests/regressor_contracts.rs

/root/repo/target/debug/deps/regressor_contracts-d75a80f1653662f6: crates/predictor/tests/regressor_contracts.rs

crates/predictor/tests/regressor_contracts.rs:
