/root/repo/target/debug/deps/yoso-fef935073a9869da.d: src/lib.rs

/root/repo/target/debug/deps/yoso-fef935073a9869da: src/lib.rs

src/lib.rs:
