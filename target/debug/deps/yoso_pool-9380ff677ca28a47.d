/root/repo/target/debug/deps/yoso_pool-9380ff677ca28a47.d: crates/pool/src/lib.rs

/root/repo/target/debug/deps/libyoso_pool-9380ff677ca28a47.rlib: crates/pool/src/lib.rs

/root/repo/target/debug/deps/libyoso_pool-9380ff677ca28a47.rmeta: crates/pool/src/lib.rs

crates/pool/src/lib.rs:
