/root/repo/target/debug/deps/serde_derive-75b1c0df07f569a2.d: third_party/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-75b1c0df07f569a2: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
