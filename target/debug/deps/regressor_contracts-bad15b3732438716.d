/root/repo/target/debug/deps/regressor_contracts-bad15b3732438716.d: crates/predictor/tests/regressor_contracts.rs

/root/repo/target/debug/deps/regressor_contracts-bad15b3732438716: crates/predictor/tests/regressor_contracts.rs

crates/predictor/tests/regressor_contracts.rs:
