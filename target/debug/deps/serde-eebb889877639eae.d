/root/repo/target/debug/deps/serde-eebb889877639eae.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-eebb889877639eae.rlib: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-eebb889877639eae.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
