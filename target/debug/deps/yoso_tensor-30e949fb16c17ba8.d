/root/repo/target/debug/deps/yoso_tensor-30e949fb16c17ba8.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/graph.rs crates/tensor/src/matmul.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/yoso_tensor-30e949fb16c17ba8: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/graph.rs crates/tensor/src/matmul.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/param.rs:
crates/tensor/src/tensor.rs:
