/root/repo/target/debug/deps/bench_parallel-7f936089ca42f6ee.d: crates/bench/src/bin/bench_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libbench_parallel-7f936089ca42f6ee.rmeta: crates/bench/src/bin/bench_parallel.rs Cargo.toml

crates/bench/src/bin/bench_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
