/root/repo/target/debug/deps/criterion-506c251fd675f46d.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-506c251fd675f46d: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
