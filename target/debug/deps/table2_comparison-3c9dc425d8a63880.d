/root/repo/target/debug/deps/table2_comparison-3c9dc425d8a63880.d: crates/bench/src/bin/table2_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_comparison-3c9dc425d8a63880.rmeta: crates/bench/src/bin/table2_comparison.rs Cargo.toml

crates/bench/src/bin/table2_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
