/root/repo/target/debug/deps/parking_lot-85f797d3a72bfdbb.d: third_party/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-85f797d3a72bfdbb: third_party/parking_lot/src/lib.rs

third_party/parking_lot/src/lib.rs:
