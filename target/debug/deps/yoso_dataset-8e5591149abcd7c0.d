/root/repo/target/debug/deps/yoso_dataset-8e5591149abcd7c0.d: crates/dataset/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_dataset-8e5591149abcd7c0.rmeta: crates/dataset/src/lib.rs Cargo.toml

crates/dataset/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
