/root/repo/target/debug/deps/yoso_core-cb5c7f88b7ffea41.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

/root/repo/target/debug/deps/yoso_core-cb5c7f88b7ffea41: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/evaluation.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/reward.rs:
crates/core/src/search.rs:
crates/core/src/twostage.rs:
