/root/repo/target/debug/deps/yoso_arch-496630a2ba3bc9d8.d: crates/arch/src/lib.rs crates/arch/src/codec.rs crates/arch/src/genotype.rs crates/arch/src/hw.rs crates/arch/src/layer.rs crates/arch/src/op.rs crates/arch/src/skeleton.rs crates/arch/src/space.rs

/root/repo/target/debug/deps/yoso_arch-496630a2ba3bc9d8: crates/arch/src/lib.rs crates/arch/src/codec.rs crates/arch/src/genotype.rs crates/arch/src/hw.rs crates/arch/src/layer.rs crates/arch/src/op.rs crates/arch/src/skeleton.rs crates/arch/src/space.rs

crates/arch/src/lib.rs:
crates/arch/src/codec.rs:
crates/arch/src/genotype.rs:
crates/arch/src/hw.rs:
crates/arch/src/layer.rs:
crates/arch/src/op.rs:
crates/arch/src/skeleton.rs:
crates/arch/src/space.rs:
