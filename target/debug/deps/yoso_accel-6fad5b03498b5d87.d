/root/repo/target/debug/deps/yoso_accel-6fad5b03498b5d87.d: crates/accel/src/lib.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/libyoso_accel-6fad5b03498b5d87.rlib: crates/accel/src/lib.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/libyoso_accel-6fad5b03498b5d87.rmeta: crates/accel/src/lib.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

crates/accel/src/lib.rs:
crates/accel/src/cost.rs:
crates/accel/src/report.rs:
crates/accel/src/sim.rs:
