/root/repo/target/debug/deps/yoso_controller-9f6024ca90530a20.d: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs

/root/repo/target/debug/deps/libyoso_controller-9f6024ca90530a20.rlib: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs

/root/repo/target/debug/deps/libyoso_controller-9f6024ca90530a20.rmeta: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs

crates/controller/src/lib.rs:
crates/controller/src/lstm.rs:
crates/controller/src/policy.rs:
