/root/repo/target/debug/deps/serde-b260c22eb2399df1.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b260c22eb2399df1.rlib: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b260c22eb2399df1.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
