/root/repo/target/debug/deps/yoso_predictor-087473723bad61bc.d: crates/predictor/src/lib.rs crates/predictor/src/features.rs crates/predictor/src/linalg.rs crates/predictor/src/metrics.rs crates/predictor/src/perf.rs crates/predictor/src/regressors/mod.rs crates/predictor/src/regressors/forest.rs crates/predictor/src/regressors/gp.rs crates/predictor/src/regressors/knn.rs crates/predictor/src/regressors/linear.rs crates/predictor/src/regressors/svr.rs crates/predictor/src/regressors/tree.rs crates/predictor/src/standardize.rs

/root/repo/target/debug/deps/libyoso_predictor-087473723bad61bc.rlib: crates/predictor/src/lib.rs crates/predictor/src/features.rs crates/predictor/src/linalg.rs crates/predictor/src/metrics.rs crates/predictor/src/perf.rs crates/predictor/src/regressors/mod.rs crates/predictor/src/regressors/forest.rs crates/predictor/src/regressors/gp.rs crates/predictor/src/regressors/knn.rs crates/predictor/src/regressors/linear.rs crates/predictor/src/regressors/svr.rs crates/predictor/src/regressors/tree.rs crates/predictor/src/standardize.rs

/root/repo/target/debug/deps/libyoso_predictor-087473723bad61bc.rmeta: crates/predictor/src/lib.rs crates/predictor/src/features.rs crates/predictor/src/linalg.rs crates/predictor/src/metrics.rs crates/predictor/src/perf.rs crates/predictor/src/regressors/mod.rs crates/predictor/src/regressors/forest.rs crates/predictor/src/regressors/gp.rs crates/predictor/src/regressors/knn.rs crates/predictor/src/regressors/linear.rs crates/predictor/src/regressors/svr.rs crates/predictor/src/regressors/tree.rs crates/predictor/src/standardize.rs

crates/predictor/src/lib.rs:
crates/predictor/src/features.rs:
crates/predictor/src/linalg.rs:
crates/predictor/src/metrics.rs:
crates/predictor/src/perf.rs:
crates/predictor/src/regressors/mod.rs:
crates/predictor/src/regressors/forest.rs:
crates/predictor/src/regressors/gp.rs:
crates/predictor/src/regressors/knn.rs:
crates/predictor/src/regressors/linear.rs:
crates/predictor/src/regressors/svr.rs:
crates/predictor/src/regressors/tree.rs:
crates/predictor/src/standardize.rs:
