/root/repo/target/debug/deps/yoso_bench-91e9781972a7fc27.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libyoso_bench-91e9781972a7fc27.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libyoso_bench-91e9781972a7fc27.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
