/root/repo/target/debug/deps/yoso-02f7abc1259040eb.d: src/lib.rs

/root/repo/target/debug/deps/yoso-02f7abc1259040eb: src/lib.rs

src/lib.rs:
