/root/repo/target/debug/deps/yoso_accel-a90cc70c020b41f2.d: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/yoso_accel-a90cc70c020b41f2: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

crates/accel/src/lib.rs:
crates/accel/src/cache.rs:
crates/accel/src/cost.rs:
crates/accel/src/report.rs:
crates/accel/src/sim.rs:
