/root/repo/target/debug/deps/yoso_controller-8c9b5d6114805eb5.d: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs

/root/repo/target/debug/deps/libyoso_controller-8c9b5d6114805eb5.rlib: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs

/root/repo/target/debug/deps/libyoso_controller-8c9b5d6114805eb5.rmeta: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs

crates/controller/src/lib.rs:
crates/controller/src/lstm.rs:
crates/controller/src/policy.rs:
