/root/repo/target/debug/deps/fig6_search-c9a4dc0361714da1.d: crates/bench/src/bin/fig6_search.rs

/root/repo/target/debug/deps/fig6_search-c9a4dc0361714da1: crates/bench/src/bin/fig6_search.rs

crates/bench/src/bin/fig6_search.rs:
