/root/repo/target/debug/deps/yoso_bench-a56ba6a1c691406e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libyoso_bench-a56ba6a1c691406e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libyoso_bench-a56ba6a1c691406e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
