/root/repo/target/debug/deps/proptest-57131be30f8cd5a5.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-57131be30f8cd5a5: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
