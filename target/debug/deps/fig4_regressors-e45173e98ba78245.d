/root/repo/target/debug/deps/fig4_regressors-e45173e98ba78245.d: crates/bench/src/bin/fig4_regressors.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_regressors-e45173e98ba78245.rmeta: crates/bench/src/bin/fig4_regressors.rs Cargo.toml

crates/bench/src/bin/fig4_regressors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
