/root/repo/target/debug/deps/table2_comparison-f11656fc826ebec3.d: crates/bench/src/bin/table2_comparison.rs

/root/repo/target/debug/deps/table2_comparison-f11656fc826ebec3: crates/bench/src/bin/table2_comparison.rs

crates/bench/src/bin/table2_comparison.rs:
