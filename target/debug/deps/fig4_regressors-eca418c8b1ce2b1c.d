/root/repo/target/debug/deps/fig4_regressors-eca418c8b1ce2b1c.d: crates/bench/src/bin/fig4_regressors.rs

/root/repo/target/debug/deps/fig4_regressors-eca418c8b1ce2b1c: crates/bench/src/bin/fig4_regressors.rs

crates/bench/src/bin/fig4_regressors.rs:
