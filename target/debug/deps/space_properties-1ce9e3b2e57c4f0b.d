/root/repo/target/debug/deps/space_properties-1ce9e3b2e57c4f0b.d: crates/arch/tests/space_properties.rs Cargo.toml

/root/repo/target/debug/deps/libspace_properties-1ce9e3b2e57c4f0b.rmeta: crates/arch/tests/space_properties.rs Cargo.toml

crates/arch/tests/space_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
