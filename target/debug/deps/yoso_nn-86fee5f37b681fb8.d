/root/repo/target/debug/deps/yoso_nn-86fee5f37b681fb8.d: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs

/root/repo/target/debug/deps/libyoso_nn-86fee5f37b681fb8.rlib: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs

/root/repo/target/debug/deps/libyoso_nn-86fee5f37b681fb8.rmeta: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs

crates/nn/src/lib.rs:
crates/nn/src/forward.rs:
crates/nn/src/network.rs:
crates/nn/src/weights.rs:
