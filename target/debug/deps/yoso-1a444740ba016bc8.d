/root/repo/target/debug/deps/yoso-1a444740ba016bc8.d: src/lib.rs

/root/repo/target/debug/deps/libyoso-1a444740ba016bc8.rlib: src/lib.rs

/root/repo/target/debug/deps/libyoso-1a444740ba016bc8.rmeta: src/lib.rs

src/lib.rs:
