/root/repo/target/debug/deps/yoso_tensor-94ff78ae162dc1f4.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/graph.rs crates/tensor/src/matmul.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_tensor-94ff78ae162dc1f4.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/graph.rs crates/tensor/src/matmul.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/param.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
