/root/repo/target/debug/deps/fig6_search-635d01500c0056fc.d: crates/bench/src/bin/fig6_search.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_search-635d01500c0056fc.rmeta: crates/bench/src/bin/fig6_search.rs Cargo.toml

crates/bench/src/bin/fig6_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
