/root/repo/target/debug/deps/yoso-120a8183099d0ff0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libyoso-120a8183099d0ff0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
