/root/repo/target/debug/deps/serde_derive-68502bfc604f6fc2.d: third_party/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-68502bfc604f6fc2.so: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
