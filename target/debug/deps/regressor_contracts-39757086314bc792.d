/root/repo/target/debug/deps/regressor_contracts-39757086314bc792.d: crates/predictor/tests/regressor_contracts.rs

/root/repo/target/debug/deps/regressor_contracts-39757086314bc792: crates/predictor/tests/regressor_contracts.rs

crates/predictor/tests/regressor_contracts.rs:
