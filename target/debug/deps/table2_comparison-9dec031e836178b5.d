/root/repo/target/debug/deps/table2_comparison-9dec031e836178b5.d: crates/bench/src/bin/table2_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_comparison-9dec031e836178b5.rmeta: crates/bench/src/bin/table2_comparison.rs Cargo.toml

crates/bench/src/bin/table2_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
