/root/repo/target/debug/deps/yoso_hypernet-bdf800dcbacff19c.d: crates/hypernet/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_hypernet-bdf800dcbacff19c.rmeta: crates/hypernet/src/lib.rs Cargo.toml

crates/hypernet/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
