/root/repo/target/debug/deps/parking_lot-c9f239c5489056ca.d: third_party/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c9f239c5489056ca.rlib: third_party/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c9f239c5489056ca.rmeta: third_party/parking_lot/src/lib.rs

third_party/parking_lot/src/lib.rs:
