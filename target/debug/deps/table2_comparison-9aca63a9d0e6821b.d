/root/repo/target/debug/deps/table2_comparison-9aca63a9d0e6821b.d: crates/bench/src/bin/table2_comparison.rs

/root/repo/target/debug/deps/table2_comparison-9aca63a9d0e6821b: crates/bench/src/bin/table2_comparison.rs

crates/bench/src/bin/table2_comparison.rs:
