/root/repo/target/debug/deps/fig7_normalized-779825340cedb756.d: crates/bench/src/bin/fig7_normalized.rs

/root/repo/target/debug/deps/fig7_normalized-779825340cedb756: crates/bench/src/bin/fig7_normalized.rs

crates/bench/src/bin/fig7_normalized.rs:
