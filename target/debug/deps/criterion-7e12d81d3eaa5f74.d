/root/repo/target/debug/deps/criterion-7e12d81d3eaa5f74.d: third_party/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-7e12d81d3eaa5f74.rmeta: third_party/criterion/src/lib.rs Cargo.toml

third_party/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
