/root/repo/target/debug/deps/serde-dc47317771f63343.d: third_party/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-dc47317771f63343.rmeta: third_party/serde/src/lib.rs Cargo.toml

third_party/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
