/root/repo/target/debug/deps/yoso_controller-dcbd0cbf216bd323.d: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_controller-dcbd0cbf216bd323.rmeta: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs Cargo.toml

crates/controller/src/lib.rs:
crates/controller/src/lstm.rs:
crates/controller/src/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
