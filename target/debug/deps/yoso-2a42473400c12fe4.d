/root/repo/target/debug/deps/yoso-2a42473400c12fe4.d: src/lib.rs

/root/repo/target/debug/deps/libyoso-2a42473400c12fe4.rlib: src/lib.rs

/root/repo/target/debug/deps/libyoso-2a42473400c12fe4.rmeta: src/lib.rs

src/lib.rs:
