/root/repo/target/debug/deps/ablations-a6d9c0b9cf277c54.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-a6d9c0b9cf277c54: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
