/root/repo/target/debug/deps/model_properties-0ee670cd44beaac7.d: crates/accel/tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-0ee670cd44beaac7: crates/accel/tests/model_properties.rs

crates/accel/tests/model_properties.rs:
