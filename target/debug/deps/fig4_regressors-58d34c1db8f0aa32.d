/root/repo/target/debug/deps/fig4_regressors-58d34c1db8f0aa32.d: crates/bench/src/bin/fig4_regressors.rs

/root/repo/target/debug/deps/fig4_regressors-58d34c1db8f0aa32: crates/bench/src/bin/fig4_regressors.rs

crates/bench/src/bin/fig4_regressors.rs:
