/root/repo/target/debug/deps/proptest-0bd1fa7fca878e31.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0bd1fa7fca878e31.rlib: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-0bd1fa7fca878e31.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
