/root/repo/target/debug/deps/fig7_normalized-77b865cda1dd395b.d: crates/bench/src/bin/fig7_normalized.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_normalized-77b865cda1dd395b.rmeta: crates/bench/src/bin/fig7_normalized.rs Cargo.toml

crates/bench/src/bin/fig7_normalized.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
