/root/repo/target/debug/deps/yoso_bench-bd952996a3587cc3.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_bench-bd952996a3587cc3.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
