/root/repo/target/debug/deps/fig7_normalized-b6c430c8791c3cfb.d: crates/bench/src/bin/fig7_normalized.rs

/root/repo/target/debug/deps/fig7_normalized-b6c430c8791c3cfb: crates/bench/src/bin/fig7_normalized.rs

crates/bench/src/bin/fig7_normalized.rs:
