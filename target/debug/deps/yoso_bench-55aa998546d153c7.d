/root/repo/target/debug/deps/yoso_bench-55aa998546d153c7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/yoso_bench-55aa998546d153c7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
