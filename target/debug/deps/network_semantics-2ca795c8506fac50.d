/root/repo/target/debug/deps/network_semantics-2ca795c8506fac50.d: crates/nn/tests/network_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libnetwork_semantics-2ca795c8506fac50.rmeta: crates/nn/tests/network_semantics.rs Cargo.toml

crates/nn/tests/network_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
