/root/repo/target/debug/deps/hypernet_eval-d4065b4b9276694c.d: crates/bench/benches/hypernet_eval.rs Cargo.toml

/root/repo/target/debug/deps/libhypernet_eval-d4065b4b9276694c.rmeta: crates/bench/benches/hypernet_eval.rs Cargo.toml

crates/bench/benches/hypernet_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
