/root/repo/target/debug/deps/yoso_dataset-303e3d74593548d9.d: crates/dataset/src/lib.rs

/root/repo/target/debug/deps/libyoso_dataset-303e3d74593548d9.rlib: crates/dataset/src/lib.rs

/root/repo/target/debug/deps/libyoso_dataset-303e3d74593548d9.rmeta: crates/dataset/src/lib.rs

crates/dataset/src/lib.rs:
