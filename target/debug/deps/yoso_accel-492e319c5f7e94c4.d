/root/repo/target/debug/deps/yoso_accel-492e319c5f7e94c4.d: crates/accel/src/lib.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/libyoso_accel-492e319c5f7e94c4.rlib: crates/accel/src/lib.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/libyoso_accel-492e319c5f7e94c4.rmeta: crates/accel/src/lib.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

crates/accel/src/lib.rs:
crates/accel/src/cost.rs:
crates/accel/src/report.rs:
crates/accel/src/sim.rs:
