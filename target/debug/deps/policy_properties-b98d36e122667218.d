/root/repo/target/debug/deps/policy_properties-b98d36e122667218.d: crates/controller/tests/policy_properties.rs

/root/repo/target/debug/deps/policy_properties-b98d36e122667218: crates/controller/tests/policy_properties.rs

crates/controller/tests/policy_properties.rs:
