/root/repo/target/debug/deps/yoso_dataset-4dbbf3be94bc07a6.d: crates/dataset/src/lib.rs

/root/repo/target/debug/deps/libyoso_dataset-4dbbf3be94bc07a6.rlib: crates/dataset/src/lib.rs

/root/repo/target/debug/deps/libyoso_dataset-4dbbf3be94bc07a6.rmeta: crates/dataset/src/lib.rs

crates/dataset/src/lib.rs:
