/root/repo/target/debug/deps/yoso_hypernet-059b7fdeec62e6fc.d: crates/hypernet/src/lib.rs

/root/repo/target/debug/deps/libyoso_hypernet-059b7fdeec62e6fc.rlib: crates/hypernet/src/lib.rs

/root/repo/target/debug/deps/libyoso_hypernet-059b7fdeec62e6fc.rmeta: crates/hypernet/src/lib.rs

crates/hypernet/src/lib.rs:
