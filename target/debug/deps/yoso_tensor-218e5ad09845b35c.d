/root/repo/target/debug/deps/yoso_tensor-218e5ad09845b35c.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/graph.rs crates/tensor/src/matmul.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libyoso_tensor-218e5ad09845b35c.rlib: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/graph.rs crates/tensor/src/matmul.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libyoso_tensor-218e5ad09845b35c.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/graph.rs crates/tensor/src/matmul.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/param.rs:
crates/tensor/src/tensor.rs:
