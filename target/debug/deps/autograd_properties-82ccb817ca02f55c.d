/root/repo/target/debug/deps/autograd_properties-82ccb817ca02f55c.d: crates/tensor/tests/autograd_properties.rs

/root/repo/target/debug/deps/autograd_properties-82ccb817ca02f55c: crates/tensor/tests/autograd_properties.rs

crates/tensor/tests/autograd_properties.rs:
