/root/repo/target/debug/deps/yoso_dataset-ebbdfb0f2c5c6e8c.d: crates/dataset/src/lib.rs

/root/repo/target/debug/deps/yoso_dataset-ebbdfb0f2c5c6e8c: crates/dataset/src/lib.rs

crates/dataset/src/lib.rs:
