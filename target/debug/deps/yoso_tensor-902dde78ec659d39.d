/root/repo/target/debug/deps/yoso_tensor-902dde78ec659d39.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/graph.rs crates/tensor/src/matmul.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_tensor-902dde78ec659d39.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/graph.rs crates/tensor/src/matmul.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/param.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
