/root/repo/target/debug/deps/property_invariants-73352654f83e3d9c.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-73352654f83e3d9c: tests/property_invariants.rs

tests/property_invariants.rs:
