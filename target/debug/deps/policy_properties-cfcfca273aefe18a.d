/root/repo/target/debug/deps/policy_properties-cfcfca273aefe18a.d: crates/controller/tests/policy_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy_properties-cfcfca273aefe18a.rmeta: crates/controller/tests/policy_properties.rs Cargo.toml

crates/controller/tests/policy_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
