/root/repo/target/debug/deps/yoso_nn-093fdb7b64d9a3f9.d: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs

/root/repo/target/debug/deps/yoso_nn-093fdb7b64d9a3f9: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs

crates/nn/src/lib.rs:
crates/nn/src/forward.rs:
crates/nn/src/network.rs:
crates/nn/src/weights.rs:
