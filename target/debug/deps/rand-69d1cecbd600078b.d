/root/repo/target/debug/deps/rand-69d1cecbd600078b.d: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/rand-69d1cecbd600078b: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
