/root/repo/target/debug/deps/yoso_core-f8dfa282a9c0ebcb.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

/root/repo/target/debug/deps/yoso_core-f8dfa282a9c0ebcb: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/evaluation.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/reward.rs:
crates/core/src/search.rs:
crates/core/src/twostage.rs:
