/root/repo/target/debug/deps/bench_parallel-6cc77ea4dd2efae8.d: crates/bench/src/bin/bench_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libbench_parallel-6cc77ea4dd2efae8.rmeta: crates/bench/src/bin/bench_parallel.rs Cargo.toml

crates/bench/src/bin/bench_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
