/root/repo/target/debug/deps/yoso_predictor-a1f661e63ff3dc20.d: crates/predictor/src/lib.rs crates/predictor/src/features.rs crates/predictor/src/linalg.rs crates/predictor/src/metrics.rs crates/predictor/src/perf.rs crates/predictor/src/regressors/mod.rs crates/predictor/src/regressors/forest.rs crates/predictor/src/regressors/gp.rs crates/predictor/src/regressors/knn.rs crates/predictor/src/regressors/linear.rs crates/predictor/src/regressors/svr.rs crates/predictor/src/regressors/tree.rs crates/predictor/src/standardize.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_predictor-a1f661e63ff3dc20.rmeta: crates/predictor/src/lib.rs crates/predictor/src/features.rs crates/predictor/src/linalg.rs crates/predictor/src/metrics.rs crates/predictor/src/perf.rs crates/predictor/src/regressors/mod.rs crates/predictor/src/regressors/forest.rs crates/predictor/src/regressors/gp.rs crates/predictor/src/regressors/knn.rs crates/predictor/src/regressors/linear.rs crates/predictor/src/regressors/svr.rs crates/predictor/src/regressors/tree.rs crates/predictor/src/standardize.rs Cargo.toml

crates/predictor/src/lib.rs:
crates/predictor/src/features.rs:
crates/predictor/src/linalg.rs:
crates/predictor/src/metrics.rs:
crates/predictor/src/perf.rs:
crates/predictor/src/regressors/mod.rs:
crates/predictor/src/regressors/forest.rs:
crates/predictor/src/regressors/gp.rs:
crates/predictor/src/regressors/knn.rs:
crates/predictor/src/regressors/linear.rs:
crates/predictor/src/regressors/svr.rs:
crates/predictor/src/regressors/tree.rs:
crates/predictor/src/standardize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
