/root/repo/target/debug/deps/rand-15555920f18361ed.d: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-15555920f18361ed.rlib: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-15555920f18361ed.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
