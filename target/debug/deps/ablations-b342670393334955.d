/root/repo/target/debug/deps/ablations-b342670393334955.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-b342670393334955: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
