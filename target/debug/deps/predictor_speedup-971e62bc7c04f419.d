/root/repo/target/debug/deps/predictor_speedup-971e62bc7c04f419.d: crates/bench/benches/predictor_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libpredictor_speedup-971e62bc7c04f419.rmeta: crates/bench/benches/predictor_speedup.rs Cargo.toml

crates/bench/benches/predictor_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
