/root/repo/target/debug/deps/criterion-6b64e22535784c67.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6b64e22535784c67.rlib: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6b64e22535784c67.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
