/root/repo/target/debug/deps/yoso_nn-b9deda7f9568bd05.d: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs

/root/repo/target/debug/deps/libyoso_nn-b9deda7f9568bd05.rlib: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs

/root/repo/target/debug/deps/libyoso_nn-b9deda7f9568bd05.rmeta: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs

crates/nn/src/lib.rs:
crates/nn/src/forward.rs:
crates/nn/src/network.rs:
crates/nn/src/weights.rs:
