/root/repo/target/debug/deps/ablations-6476785286c531f4.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-6476785286c531f4: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
