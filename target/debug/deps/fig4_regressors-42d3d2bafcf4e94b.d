/root/repo/target/debug/deps/fig4_regressors-42d3d2bafcf4e94b.d: crates/bench/src/bin/fig4_regressors.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_regressors-42d3d2bafcf4e94b.rmeta: crates/bench/src/bin/fig4_regressors.rs Cargo.toml

crates/bench/src/bin/fig4_regressors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
