/root/repo/target/debug/deps/parking_lot-f59dcf6fb0fcfb74.d: third_party/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-f59dcf6fb0fcfb74.rmeta: third_party/parking_lot/src/lib.rs Cargo.toml

third_party/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
