/root/repo/target/debug/deps/fig7_normalized-97a77ab2206a65bf.d: crates/bench/src/bin/fig7_normalized.rs

/root/repo/target/debug/deps/fig7_normalized-97a77ab2206a65bf: crates/bench/src/bin/fig7_normalized.rs

crates/bench/src/bin/fig7_normalized.rs:
