/root/repo/target/debug/deps/fig4_regressors-67bd5c026665f856.d: crates/bench/src/bin/fig4_regressors.rs

/root/repo/target/debug/deps/fig4_regressors-67bd5c026665f856: crates/bench/src/bin/fig4_regressors.rs

crates/bench/src/bin/fig4_regressors.rs:
