/root/repo/target/debug/deps/proptest-f3a36ad83dc16e6d.d: third_party/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-f3a36ad83dc16e6d.rmeta: third_party/proptest/src/lib.rs Cargo.toml

third_party/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
