/root/repo/target/debug/deps/regressor_contracts-00e3255a06e9bb91.d: crates/predictor/tests/regressor_contracts.rs Cargo.toml

/root/repo/target/debug/deps/libregressor_contracts-00e3255a06e9bb91.rmeta: crates/predictor/tests/regressor_contracts.rs Cargo.toml

crates/predictor/tests/regressor_contracts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
