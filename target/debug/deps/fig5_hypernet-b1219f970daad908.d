/root/repo/target/debug/deps/fig5_hypernet-b1219f970daad908.d: crates/bench/src/bin/fig5_hypernet.rs

/root/repo/target/debug/deps/fig5_hypernet-b1219f970daad908: crates/bench/src/bin/fig5_hypernet.rs

crates/bench/src/bin/fig5_hypernet.rs:
