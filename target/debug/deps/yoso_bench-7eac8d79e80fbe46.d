/root/repo/target/debug/deps/yoso_bench-7eac8d79e80fbe46.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libyoso_bench-7eac8d79e80fbe46.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libyoso_bench-7eac8d79e80fbe46.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
