/root/repo/target/debug/deps/yoso_core-8bc88955d3a2461e.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_core-8bc88955d3a2461e.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/evaluation.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/reward.rs:
crates/core/src/search.rs:
crates/core/src/twostage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
