/root/repo/target/debug/deps/fig6_search-8ed240948cf82503.d: crates/bench/src/bin/fig6_search.rs

/root/repo/target/debug/deps/fig6_search-8ed240948cf82503: crates/bench/src/bin/fig6_search.rs

crates/bench/src/bin/fig6_search.rs:
