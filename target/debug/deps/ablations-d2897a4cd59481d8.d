/root/repo/target/debug/deps/ablations-d2897a4cd59481d8.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-d2897a4cd59481d8: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
