/root/repo/target/debug/deps/yoso-f1d497079106fc1c.d: src/lib.rs

/root/repo/target/debug/deps/libyoso-f1d497079106fc1c.rlib: src/lib.rs

/root/repo/target/debug/deps/libyoso-f1d497079106fc1c.rmeta: src/lib.rs

src/lib.rs:
