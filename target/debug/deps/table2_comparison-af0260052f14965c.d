/root/repo/target/debug/deps/table2_comparison-af0260052f14965c.d: crates/bench/src/bin/table2_comparison.rs

/root/repo/target/debug/deps/table2_comparison-af0260052f14965c: crates/bench/src/bin/table2_comparison.rs

crates/bench/src/bin/table2_comparison.rs:
