/root/repo/target/debug/deps/model_properties-d6e306639494a388.d: crates/accel/tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-d6e306639494a388: crates/accel/tests/model_properties.rs

crates/accel/tests/model_properties.rs:
