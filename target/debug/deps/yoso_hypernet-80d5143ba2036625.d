/root/repo/target/debug/deps/yoso_hypernet-80d5143ba2036625.d: crates/hypernet/src/lib.rs

/root/repo/target/debug/deps/libyoso_hypernet-80d5143ba2036625.rlib: crates/hypernet/src/lib.rs

/root/repo/target/debug/deps/libyoso_hypernet-80d5143ba2036625.rmeta: crates/hypernet/src/lib.rs

crates/hypernet/src/lib.rs:
