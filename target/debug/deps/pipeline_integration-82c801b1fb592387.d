/root/repo/target/debug/deps/pipeline_integration-82c801b1fb592387.d: tests/pipeline_integration.rs

/root/repo/target/debug/deps/pipeline_integration-82c801b1fb592387: tests/pipeline_integration.rs

tests/pipeline_integration.rs:
