/root/repo/target/debug/deps/yoso_arch-901f0efaa33e73a9.d: crates/arch/src/lib.rs crates/arch/src/codec.rs crates/arch/src/genotype.rs crates/arch/src/hw.rs crates/arch/src/layer.rs crates/arch/src/op.rs crates/arch/src/skeleton.rs crates/arch/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_arch-901f0efaa33e73a9.rmeta: crates/arch/src/lib.rs crates/arch/src/codec.rs crates/arch/src/genotype.rs crates/arch/src/hw.rs crates/arch/src/layer.rs crates/arch/src/op.rs crates/arch/src/skeleton.rs crates/arch/src/space.rs Cargo.toml

crates/arch/src/lib.rs:
crates/arch/src/codec.rs:
crates/arch/src/genotype.rs:
crates/arch/src/hw.rs:
crates/arch/src/layer.rs:
crates/arch/src/op.rs:
crates/arch/src/skeleton.rs:
crates/arch/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
