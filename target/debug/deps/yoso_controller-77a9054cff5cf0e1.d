/root/repo/target/debug/deps/yoso_controller-77a9054cff5cf0e1.d: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs

/root/repo/target/debug/deps/yoso_controller-77a9054cff5cf0e1: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs

crates/controller/src/lib.rs:
crates/controller/src/lstm.rs:
crates/controller/src/policy.rs:
