/root/repo/target/debug/deps/yoso-f70baf87b156382e.d: src/lib.rs

/root/repo/target/debug/deps/libyoso-f70baf87b156382e.rlib: src/lib.rs

/root/repo/target/debug/deps/libyoso-f70baf87b156382e.rmeta: src/lib.rs

src/lib.rs:
