/root/repo/target/debug/deps/yoso_nn-5695556f3bb789ff.d: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_nn-5695556f3bb789ff.rmeta: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/forward.rs:
crates/nn/src/network.rs:
crates/nn/src/weights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
