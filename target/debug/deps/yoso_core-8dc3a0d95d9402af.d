/root/repo/target/debug/deps/yoso_core-8dc3a0d95d9402af.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

/root/repo/target/debug/deps/libyoso_core-8dc3a0d95d9402af.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

/root/repo/target/debug/deps/libyoso_core-8dc3a0d95d9402af.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/evaluation.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/reward.rs:
crates/core/src/search.rs:
crates/core/src/twostage.rs:
