/root/repo/target/debug/deps/criterion-f0d3d414ecf91297.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f0d3d414ecf91297.rlib: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f0d3d414ecf91297.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
