/root/repo/target/debug/deps/yoso_accel-54b014036cb3c2a6.d: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/libyoso_accel-54b014036cb3c2a6.rlib: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

/root/repo/target/debug/deps/libyoso_accel-54b014036cb3c2a6.rmeta: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

crates/accel/src/lib.rs:
crates/accel/src/cache.rs:
crates/accel/src/cost.rs:
crates/accel/src/report.rs:
crates/accel/src/sim.rs:
