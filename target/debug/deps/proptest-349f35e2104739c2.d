/root/repo/target/debug/deps/proptest-349f35e2104739c2.d: third_party/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-349f35e2104739c2.rmeta: third_party/proptest/src/lib.rs Cargo.toml

third_party/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
