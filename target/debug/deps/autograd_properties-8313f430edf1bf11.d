/root/repo/target/debug/deps/autograd_properties-8313f430edf1bf11.d: crates/tensor/tests/autograd_properties.rs Cargo.toml

/root/repo/target/debug/deps/libautograd_properties-8313f430edf1bf11.rmeta: crates/tensor/tests/autograd_properties.rs Cargo.toml

crates/tensor/tests/autograd_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
