/root/repo/target/debug/deps/yoso_bench-30f8f2d7ad7fe0eb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/yoso_bench-30f8f2d7ad7fe0eb: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
