/root/repo/target/debug/deps/yoso_pool-b6a0647c0a367616.d: crates/pool/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_pool-b6a0647c0a367616.rmeta: crates/pool/src/lib.rs Cargo.toml

crates/pool/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
