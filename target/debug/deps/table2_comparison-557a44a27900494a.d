/root/repo/target/debug/deps/table2_comparison-557a44a27900494a.d: crates/bench/src/bin/table2_comparison.rs

/root/repo/target/debug/deps/table2_comparison-557a44a27900494a: crates/bench/src/bin/table2_comparison.rs

crates/bench/src/bin/table2_comparison.rs:
