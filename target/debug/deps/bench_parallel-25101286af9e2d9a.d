/root/repo/target/debug/deps/bench_parallel-25101286af9e2d9a.d: crates/bench/src/bin/bench_parallel.rs

/root/repo/target/debug/deps/bench_parallel-25101286af9e2d9a: crates/bench/src/bin/bench_parallel.rs

crates/bench/src/bin/bench_parallel.rs:
