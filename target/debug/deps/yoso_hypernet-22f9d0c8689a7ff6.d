/root/repo/target/debug/deps/yoso_hypernet-22f9d0c8689a7ff6.d: crates/hypernet/src/lib.rs

/root/repo/target/debug/deps/yoso_hypernet-22f9d0c8689a7ff6: crates/hypernet/src/lib.rs

crates/hypernet/src/lib.rs:
