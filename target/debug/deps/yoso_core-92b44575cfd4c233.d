/root/repo/target/debug/deps/yoso_core-92b44575cfd4c233.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_core-92b44575cfd4c233.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/evaluation.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/reward.rs:
crates/core/src/search.rs:
crates/core/src/twostage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
