/root/repo/target/debug/deps/pipeline_integration-9db85eb5dedcfcdb.d: tests/pipeline_integration.rs

/root/repo/target/debug/deps/pipeline_integration-9db85eb5dedcfcdb: tests/pipeline_integration.rs

tests/pipeline_integration.rs:
