/root/repo/target/debug/deps/yoso_pool-c2655403ee6b85a0.d: crates/pool/src/lib.rs

/root/repo/target/debug/deps/yoso_pool-c2655403ee6b85a0: crates/pool/src/lib.rs

crates/pool/src/lib.rs:
