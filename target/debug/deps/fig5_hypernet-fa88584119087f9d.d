/root/repo/target/debug/deps/fig5_hypernet-fa88584119087f9d.d: crates/bench/src/bin/fig5_hypernet.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_hypernet-fa88584119087f9d.rmeta: crates/bench/src/bin/fig5_hypernet.rs Cargo.toml

crates/bench/src/bin/fig5_hypernet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
