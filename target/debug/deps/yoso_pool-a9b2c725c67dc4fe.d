/root/repo/target/debug/deps/yoso_pool-a9b2c725c67dc4fe.d: crates/pool/src/lib.rs

/root/repo/target/debug/deps/libyoso_pool-a9b2c725c67dc4fe.rlib: crates/pool/src/lib.rs

/root/repo/target/debug/deps/libyoso_pool-a9b2c725c67dc4fe.rmeta: crates/pool/src/lib.rs

crates/pool/src/lib.rs:
