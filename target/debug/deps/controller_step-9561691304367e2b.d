/root/repo/target/debug/deps/controller_step-9561691304367e2b.d: crates/bench/benches/controller_step.rs Cargo.toml

/root/repo/target/debug/deps/libcontroller_step-9561691304367e2b.rmeta: crates/bench/benches/controller_step.rs Cargo.toml

crates/bench/benches/controller_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
