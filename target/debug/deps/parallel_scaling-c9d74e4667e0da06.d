/root/repo/target/debug/deps/parallel_scaling-c9d74e4667e0da06.d: crates/bench/benches/parallel_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_scaling-c9d74e4667e0da06.rmeta: crates/bench/benches/parallel_scaling.rs Cargo.toml

crates/bench/benches/parallel_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
