/root/repo/target/debug/deps/yoso_accel-ec81aee239554e0f.d: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_accel-ec81aee239554e0f.rmeta: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs Cargo.toml

crates/accel/src/lib.rs:
crates/accel/src/cache.rs:
crates/accel/src/cost.rs:
crates/accel/src/report.rs:
crates/accel/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
