/root/repo/target/debug/deps/serde_derive-e23cfe46e27fa68b.d: third_party/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-e23cfe46e27fa68b.rmeta: third_party/serde_derive/src/lib.rs Cargo.toml

third_party/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
