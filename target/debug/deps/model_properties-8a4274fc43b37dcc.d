/root/repo/target/debug/deps/model_properties-8a4274fc43b37dcc.d: crates/accel/tests/model_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_properties-8a4274fc43b37dcc.rmeta: crates/accel/tests/model_properties.rs Cargo.toml

crates/accel/tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
