/root/repo/target/debug/deps/criterion-74f057d606e2a243.d: third_party/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-74f057d606e2a243.rmeta: third_party/criterion/src/lib.rs Cargo.toml

third_party/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
