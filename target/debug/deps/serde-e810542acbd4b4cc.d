/root/repo/target/debug/deps/serde-e810542acbd4b4cc.d: third_party/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-e810542acbd4b4cc.rmeta: third_party/serde/src/lib.rs Cargo.toml

third_party/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
