/root/repo/target/debug/deps/proptest-4882ce6bf2356475.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-4882ce6bf2356475.rlib: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-4882ce6bf2356475.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
