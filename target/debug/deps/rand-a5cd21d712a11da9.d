/root/repo/target/debug/deps/rand-a5cd21d712a11da9.d: third_party/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-a5cd21d712a11da9.rmeta: third_party/rand/src/lib.rs Cargo.toml

third_party/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
