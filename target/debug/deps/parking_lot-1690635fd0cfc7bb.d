/root/repo/target/debug/deps/parking_lot-1690635fd0cfc7bb.d: third_party/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-1690635fd0cfc7bb.rlib: third_party/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-1690635fd0cfc7bb.rmeta: third_party/parking_lot/src/lib.rs

third_party/parking_lot/src/lib.rs:
