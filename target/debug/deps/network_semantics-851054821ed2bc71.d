/root/repo/target/debug/deps/network_semantics-851054821ed2bc71.d: crates/nn/tests/network_semantics.rs

/root/repo/target/debug/deps/network_semantics-851054821ed2bc71: crates/nn/tests/network_semantics.rs

crates/nn/tests/network_semantics.rs:
