/root/repo/target/debug/deps/simulator-2982d5603f050c9d.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-2982d5603f050c9d.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
