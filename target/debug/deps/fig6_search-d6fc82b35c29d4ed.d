/root/repo/target/debug/deps/fig6_search-d6fc82b35c29d4ed.d: crates/bench/src/bin/fig6_search.rs

/root/repo/target/debug/deps/fig6_search-d6fc82b35c29d4ed: crates/bench/src/bin/fig6_search.rs

crates/bench/src/bin/fig6_search.rs:
