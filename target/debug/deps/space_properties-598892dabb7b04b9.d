/root/repo/target/debug/deps/space_properties-598892dabb7b04b9.d: crates/arch/tests/space_properties.rs

/root/repo/target/debug/deps/space_properties-598892dabb7b04b9: crates/arch/tests/space_properties.rs

crates/arch/tests/space_properties.rs:
