/root/repo/target/debug/deps/fig5_hypernet-7913095f062ea5a6.d: crates/bench/src/bin/fig5_hypernet.rs

/root/repo/target/debug/deps/fig5_hypernet-7913095f062ea5a6: crates/bench/src/bin/fig5_hypernet.rs

crates/bench/src/bin/fig5_hypernet.rs:
