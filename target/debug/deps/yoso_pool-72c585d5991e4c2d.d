/root/repo/target/debug/deps/yoso_pool-72c585d5991e4c2d.d: crates/pool/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libyoso_pool-72c585d5991e4c2d.rmeta: crates/pool/src/lib.rs Cargo.toml

crates/pool/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
