/root/repo/target/debug/libserde.rlib: /root/repo/third_party/serde/src/lib.rs /root/repo/third_party/serde_derive/src/lib.rs
