/root/repo/target/debug/libyoso_pool.rlib: /root/repo/crates/pool/src/lib.rs /root/repo/third_party/rand/src/lib.rs
