/root/repo/target/debug/libparking_lot.rlib: /root/repo/third_party/parking_lot/src/lib.rs
