/root/repo/target/release/deps/parallel_scaling-2f752f30bc05934d.d: crates/bench/benches/parallel_scaling.rs

/root/repo/target/release/deps/parallel_scaling-2f752f30bc05934d: crates/bench/benches/parallel_scaling.rs

crates/bench/benches/parallel_scaling.rs:
