/root/repo/target/release/deps/fig5_hypernet-63d81e4953622d13.d: crates/bench/src/bin/fig5_hypernet.rs

/root/repo/target/release/deps/fig5_hypernet-63d81e4953622d13: crates/bench/src/bin/fig5_hypernet.rs

crates/bench/src/bin/fig5_hypernet.rs:
