/root/repo/target/release/deps/yoso_pool-90f60c28a7ca060b.d: crates/pool/src/lib.rs

/root/repo/target/release/deps/libyoso_pool-90f60c28a7ca060b.rlib: crates/pool/src/lib.rs

/root/repo/target/release/deps/libyoso_pool-90f60c28a7ca060b.rmeta: crates/pool/src/lib.rs

crates/pool/src/lib.rs:
