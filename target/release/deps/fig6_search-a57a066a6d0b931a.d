/root/repo/target/release/deps/fig6_search-a57a066a6d0b931a.d: crates/bench/src/bin/fig6_search.rs

/root/repo/target/release/deps/fig6_search-a57a066a6d0b931a: crates/bench/src/bin/fig6_search.rs

crates/bench/src/bin/fig6_search.rs:
