/root/repo/target/release/deps/proptest-ea4e975c0c2364c4.d: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-ea4e975c0c2364c4.rlib: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-ea4e975c0c2364c4.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
