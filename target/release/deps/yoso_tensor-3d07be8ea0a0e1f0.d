/root/repo/target/release/deps/yoso_tensor-3d07be8ea0a0e1f0.d: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/graph.rs crates/tensor/src/matmul.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libyoso_tensor-3d07be8ea0a0e1f0.rlib: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/graph.rs crates/tensor/src/matmul.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libyoso_tensor-3d07be8ea0a0e1f0.rmeta: crates/tensor/src/lib.rs crates/tensor/src/conv.rs crates/tensor/src/graph.rs crates/tensor/src/matmul.rs crates/tensor/src/optim.rs crates/tensor/src/param.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/param.rs:
crates/tensor/src/tensor.rs:
