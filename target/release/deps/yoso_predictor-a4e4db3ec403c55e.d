/root/repo/target/release/deps/yoso_predictor-a4e4db3ec403c55e.d: crates/predictor/src/lib.rs crates/predictor/src/features.rs crates/predictor/src/linalg.rs crates/predictor/src/metrics.rs crates/predictor/src/perf.rs crates/predictor/src/regressors/mod.rs crates/predictor/src/regressors/forest.rs crates/predictor/src/regressors/gp.rs crates/predictor/src/regressors/knn.rs crates/predictor/src/regressors/linear.rs crates/predictor/src/regressors/svr.rs crates/predictor/src/regressors/tree.rs crates/predictor/src/standardize.rs

/root/repo/target/release/deps/libyoso_predictor-a4e4db3ec403c55e.rlib: crates/predictor/src/lib.rs crates/predictor/src/features.rs crates/predictor/src/linalg.rs crates/predictor/src/metrics.rs crates/predictor/src/perf.rs crates/predictor/src/regressors/mod.rs crates/predictor/src/regressors/forest.rs crates/predictor/src/regressors/gp.rs crates/predictor/src/regressors/knn.rs crates/predictor/src/regressors/linear.rs crates/predictor/src/regressors/svr.rs crates/predictor/src/regressors/tree.rs crates/predictor/src/standardize.rs

/root/repo/target/release/deps/libyoso_predictor-a4e4db3ec403c55e.rmeta: crates/predictor/src/lib.rs crates/predictor/src/features.rs crates/predictor/src/linalg.rs crates/predictor/src/metrics.rs crates/predictor/src/perf.rs crates/predictor/src/regressors/mod.rs crates/predictor/src/regressors/forest.rs crates/predictor/src/regressors/gp.rs crates/predictor/src/regressors/knn.rs crates/predictor/src/regressors/linear.rs crates/predictor/src/regressors/svr.rs crates/predictor/src/regressors/tree.rs crates/predictor/src/standardize.rs

crates/predictor/src/lib.rs:
crates/predictor/src/features.rs:
crates/predictor/src/linalg.rs:
crates/predictor/src/metrics.rs:
crates/predictor/src/perf.rs:
crates/predictor/src/regressors/mod.rs:
crates/predictor/src/regressors/forest.rs:
crates/predictor/src/regressors/gp.rs:
crates/predictor/src/regressors/knn.rs:
crates/predictor/src/regressors/linear.rs:
crates/predictor/src/regressors/svr.rs:
crates/predictor/src/regressors/tree.rs:
crates/predictor/src/standardize.rs:
