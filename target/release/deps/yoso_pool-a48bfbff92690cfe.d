/root/repo/target/release/deps/yoso_pool-a48bfbff92690cfe.d: crates/pool/src/lib.rs

/root/repo/target/release/deps/yoso_pool-a48bfbff92690cfe: crates/pool/src/lib.rs

crates/pool/src/lib.rs:
