/root/repo/target/release/deps/fig4_regressors-40017dda51d340cd.d: crates/bench/src/bin/fig4_regressors.rs

/root/repo/target/release/deps/fig4_regressors-40017dda51d340cd: crates/bench/src/bin/fig4_regressors.rs

crates/bench/src/bin/fig4_regressors.rs:
