/root/repo/target/release/deps/yoso_controller-a5b8c1259b86f0a4.d: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs

/root/repo/target/release/deps/libyoso_controller-a5b8c1259b86f0a4.rlib: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs

/root/repo/target/release/deps/libyoso_controller-a5b8c1259b86f0a4.rmeta: crates/controller/src/lib.rs crates/controller/src/lstm.rs crates/controller/src/policy.rs

crates/controller/src/lib.rs:
crates/controller/src/lstm.rs:
crates/controller/src/policy.rs:
