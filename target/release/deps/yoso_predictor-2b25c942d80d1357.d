/root/repo/target/release/deps/yoso_predictor-2b25c942d80d1357.d: crates/predictor/src/lib.rs crates/predictor/src/features.rs crates/predictor/src/linalg.rs crates/predictor/src/metrics.rs crates/predictor/src/perf.rs crates/predictor/src/regressors/mod.rs crates/predictor/src/regressors/forest.rs crates/predictor/src/regressors/gp.rs crates/predictor/src/regressors/knn.rs crates/predictor/src/regressors/linear.rs crates/predictor/src/regressors/svr.rs crates/predictor/src/regressors/tree.rs crates/predictor/src/standardize.rs

/root/repo/target/release/deps/yoso_predictor-2b25c942d80d1357: crates/predictor/src/lib.rs crates/predictor/src/features.rs crates/predictor/src/linalg.rs crates/predictor/src/metrics.rs crates/predictor/src/perf.rs crates/predictor/src/regressors/mod.rs crates/predictor/src/regressors/forest.rs crates/predictor/src/regressors/gp.rs crates/predictor/src/regressors/knn.rs crates/predictor/src/regressors/linear.rs crates/predictor/src/regressors/svr.rs crates/predictor/src/regressors/tree.rs crates/predictor/src/standardize.rs

crates/predictor/src/lib.rs:
crates/predictor/src/features.rs:
crates/predictor/src/linalg.rs:
crates/predictor/src/metrics.rs:
crates/predictor/src/perf.rs:
crates/predictor/src/regressors/mod.rs:
crates/predictor/src/regressors/forest.rs:
crates/predictor/src/regressors/gp.rs:
crates/predictor/src/regressors/knn.rs:
crates/predictor/src/regressors/linear.rs:
crates/predictor/src/regressors/svr.rs:
crates/predictor/src/regressors/tree.rs:
crates/predictor/src/standardize.rs:
