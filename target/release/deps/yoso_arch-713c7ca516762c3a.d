/root/repo/target/release/deps/yoso_arch-713c7ca516762c3a.d: crates/arch/src/lib.rs crates/arch/src/codec.rs crates/arch/src/genotype.rs crates/arch/src/hw.rs crates/arch/src/layer.rs crates/arch/src/op.rs crates/arch/src/skeleton.rs crates/arch/src/space.rs

/root/repo/target/release/deps/libyoso_arch-713c7ca516762c3a.rlib: crates/arch/src/lib.rs crates/arch/src/codec.rs crates/arch/src/genotype.rs crates/arch/src/hw.rs crates/arch/src/layer.rs crates/arch/src/op.rs crates/arch/src/skeleton.rs crates/arch/src/space.rs

/root/repo/target/release/deps/libyoso_arch-713c7ca516762c3a.rmeta: crates/arch/src/lib.rs crates/arch/src/codec.rs crates/arch/src/genotype.rs crates/arch/src/hw.rs crates/arch/src/layer.rs crates/arch/src/op.rs crates/arch/src/skeleton.rs crates/arch/src/space.rs

crates/arch/src/lib.rs:
crates/arch/src/codec.rs:
crates/arch/src/genotype.rs:
crates/arch/src/hw.rs:
crates/arch/src/layer.rs:
crates/arch/src/op.rs:
crates/arch/src/skeleton.rs:
crates/arch/src/space.rs:
