/root/repo/target/release/deps/yoso-68700cfeb0469d71.d: src/lib.rs

/root/repo/target/release/deps/libyoso-68700cfeb0469d71.rlib: src/lib.rs

/root/repo/target/release/deps/libyoso-68700cfeb0469d71.rmeta: src/lib.rs

src/lib.rs:
