/root/repo/target/release/deps/serde-cc1ca362830a0ef4.d: third_party/serde/src/lib.rs

/root/repo/target/release/deps/libserde-cc1ca362830a0ef4.rlib: third_party/serde/src/lib.rs

/root/repo/target/release/deps/libserde-cc1ca362830a0ef4.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
