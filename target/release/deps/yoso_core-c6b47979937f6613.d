/root/repo/target/release/deps/yoso_core-c6b47979937f6613.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

/root/repo/target/release/deps/libyoso_core-c6b47979937f6613.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

/root/repo/target/release/deps/libyoso_core-c6b47979937f6613.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/evaluation.rs crates/core/src/parallel.rs crates/core/src/pipeline.rs crates/core/src/reward.rs crates/core/src/search.rs crates/core/src/twostage.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/evaluation.rs:
crates/core/src/parallel.rs:
crates/core/src/pipeline.rs:
crates/core/src/reward.rs:
crates/core/src/search.rs:
crates/core/src/twostage.rs:
