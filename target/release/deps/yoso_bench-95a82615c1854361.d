/root/repo/target/release/deps/yoso_bench-95a82615c1854361.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libyoso_bench-95a82615c1854361.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libyoso_bench-95a82615c1854361.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
