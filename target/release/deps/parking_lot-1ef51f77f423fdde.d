/root/repo/target/release/deps/parking_lot-1ef51f77f423fdde.d: third_party/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1ef51f77f423fdde.rlib: third_party/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1ef51f77f423fdde.rmeta: third_party/parking_lot/src/lib.rs

third_party/parking_lot/src/lib.rs:
