/root/repo/target/release/deps/yoso_dataset-aeb4a5e59e40f1fe.d: crates/dataset/src/lib.rs

/root/repo/target/release/deps/libyoso_dataset-aeb4a5e59e40f1fe.rlib: crates/dataset/src/lib.rs

/root/repo/target/release/deps/libyoso_dataset-aeb4a5e59e40f1fe.rmeta: crates/dataset/src/lib.rs

crates/dataset/src/lib.rs:
