/root/repo/target/release/deps/yoso_accel-a9d668b1209dbc3e.d: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

/root/repo/target/release/deps/libyoso_accel-a9d668b1209dbc3e.rlib: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

/root/repo/target/release/deps/libyoso_accel-a9d668b1209dbc3e.rmeta: crates/accel/src/lib.rs crates/accel/src/cache.rs crates/accel/src/cost.rs crates/accel/src/report.rs crates/accel/src/sim.rs

crates/accel/src/lib.rs:
crates/accel/src/cache.rs:
crates/accel/src/cost.rs:
crates/accel/src/report.rs:
crates/accel/src/sim.rs:
