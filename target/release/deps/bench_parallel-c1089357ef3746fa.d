/root/repo/target/release/deps/bench_parallel-c1089357ef3746fa.d: crates/bench/src/bin/bench_parallel.rs

/root/repo/target/release/deps/bench_parallel-c1089357ef3746fa: crates/bench/src/bin/bench_parallel.rs

crates/bench/src/bin/bench_parallel.rs:
