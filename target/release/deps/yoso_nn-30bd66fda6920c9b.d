/root/repo/target/release/deps/yoso_nn-30bd66fda6920c9b.d: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs

/root/repo/target/release/deps/libyoso_nn-30bd66fda6920c9b.rlib: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs

/root/repo/target/release/deps/libyoso_nn-30bd66fda6920c9b.rmeta: crates/nn/src/lib.rs crates/nn/src/forward.rs crates/nn/src/network.rs crates/nn/src/weights.rs

crates/nn/src/lib.rs:
crates/nn/src/forward.rs:
crates/nn/src/network.rs:
crates/nn/src/weights.rs:
