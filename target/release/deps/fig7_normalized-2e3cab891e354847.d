/root/repo/target/release/deps/fig7_normalized-2e3cab891e354847.d: crates/bench/src/bin/fig7_normalized.rs

/root/repo/target/release/deps/fig7_normalized-2e3cab891e354847: crates/bench/src/bin/fig7_normalized.rs

crates/bench/src/bin/fig7_normalized.rs:
