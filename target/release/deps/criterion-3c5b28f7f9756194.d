/root/repo/target/release/deps/criterion-3c5b28f7f9756194.d: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3c5b28f7f9756194.rlib: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3c5b28f7f9756194.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
