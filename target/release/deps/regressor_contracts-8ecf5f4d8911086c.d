/root/repo/target/release/deps/regressor_contracts-8ecf5f4d8911086c.d: crates/predictor/tests/regressor_contracts.rs

/root/repo/target/release/deps/regressor_contracts-8ecf5f4d8911086c: crates/predictor/tests/regressor_contracts.rs

crates/predictor/tests/regressor_contracts.rs:
