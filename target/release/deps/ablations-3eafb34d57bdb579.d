/root/repo/target/release/deps/ablations-3eafb34d57bdb579.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-3eafb34d57bdb579: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
