/root/repo/target/release/deps/rand-b66702bbe3fd2a20.d: third_party/rand/src/lib.rs

/root/repo/target/release/deps/librand-b66702bbe3fd2a20.rlib: third_party/rand/src/lib.rs

/root/repo/target/release/deps/librand-b66702bbe3fd2a20.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
