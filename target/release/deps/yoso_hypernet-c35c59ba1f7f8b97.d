/root/repo/target/release/deps/yoso_hypernet-c35c59ba1f7f8b97.d: crates/hypernet/src/lib.rs

/root/repo/target/release/deps/libyoso_hypernet-c35c59ba1f7f8b97.rlib: crates/hypernet/src/lib.rs

/root/repo/target/release/deps/libyoso_hypernet-c35c59ba1f7f8b97.rmeta: crates/hypernet/src/lib.rs

crates/hypernet/src/lib.rs:
