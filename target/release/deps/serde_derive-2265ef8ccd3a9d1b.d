/root/repo/target/release/deps/serde_derive-2265ef8ccd3a9d1b.d: third_party/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-2265ef8ccd3a9d1b.so: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
