/root/repo/target/release/deps/table2_comparison-56f8cb4d9a1d0012.d: crates/bench/src/bin/table2_comparison.rs

/root/repo/target/release/deps/table2_comparison-56f8cb4d9a1d0012: crates/bench/src/bin/table2_comparison.rs

crates/bench/src/bin/table2_comparison.rs:
