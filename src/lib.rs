//! # yoso
//!
//! Facade crate for the YOSO reproduction — *"You Only Search Once: A
//! Fast Automation Framework for Single-Stage DNN/Accelerator Co-design"*
//! (Chen et al., DATE 2020).
//!
//! Each subsystem lives in its own crate and is re-exported here:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`trace`] | `yoso-trace` | zero-dep structured telemetry |
//! | [`chaos`] | `yoso-chaos` | deterministic fault injection |
//! | [`pool`] | `yoso-pool` | deterministic work-sharing thread pool |
//! | [`tensor`] | `yoso-tensor` | CPU tensor + autograd engine |
//! | [`dataset`] | `yoso-dataset` | SynthCifar procedural dataset |
//! | [`arch`] | `yoso-arch` | joint search space + action codec |
//! | [`nn`] | `yoso-nn` | trainable cell networks |
//! | [`accel`] | `yoso-accel` | systolic-array simulator |
//! | [`predictor`] | `yoso-predictor` | GP & friends performance predictors |
//! | [`controller`] | `yoso-controller` | LSTM + REINFORCE agent |
//! | [`hypernet`] | `yoso-hypernet` | one-shot weight-sharing supernet |
//! | [`persist`] | `yoso-persist` | checksummed atomic snapshot container |
//! | [`core`] | `yoso-core` | rewards, evaluators, search, baselines |
//! | [`server`] | `yoso-server` | multi-tenant search daemon + wire protocol |
//! | [`client`] | `yoso-client` | blocking protocol client library |
//!
//! The common entry points are gathered in [`prelude`]:
//!
//! ```
//! use yoso::prelude::*;
//!
//! let sk = yoso::arch::NetworkSkeleton::tiny();
//! let evaluator = SurrogateEvaluator::new(sk.clone());
//! let reward = RewardConfig::balanced(calibrate_constraints(&sk, 30, 0, 50.0));
//! let trace = Trace::memory();
//! let outcome = SearchSession::builder()
//!     .evaluator(&evaluator)
//!     .reward(reward)
//!     .strategy(Strategy::Rl)
//!     .config(SearchConfig::builder().iterations(20).rollouts_per_update(4).build())
//!     .trace(trace.clone())
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.history.len(), 20);
//! assert!(trace.events_emitted() > 20);
//! ```
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the experiment index.

#![forbid(unsafe_code)]

pub use yoso_accel as accel;
pub use yoso_arch as arch;
pub use yoso_chaos as chaos;
pub use yoso_client as client;
pub use yoso_controller as controller;
pub use yoso_core as core;
pub use yoso_dataset as dataset;
pub use yoso_hypernet as hypernet;
pub use yoso_nn as nn;
pub use yoso_persist as persist;
pub use yoso_pool as pool;
pub use yoso_predictor as predictor;
pub use yoso_server as server;
pub use yoso_tensor as tensor;
pub use yoso_trace as trace;

/// One-import surface for the co-design flow: the
/// [`SearchSession`](yoso_core::session::SearchSession) builder and its
/// inputs (evaluators, rewards, config), the unified
/// [`Error`](yoso_core::error::Error) type, the persistence surface
/// ([`Snapshot`](yoso_persist::Snapshot), checkpoint helpers) behind
/// crash-safe resume, plus the telemetry handle
/// ([`Trace`](yoso_trace::Trace)) and event type
/// ([`Event`](yoso_trace::Event)) it emits. The fault-tolerance surface
/// rides along: chaos plans ([`FaultPlan`](yoso_chaos::FaultPlan)),
/// supervised-pool outcomes ([`ItemOutcome`](yoso_pool::ItemOutcome))
/// and the quarantine ledger
/// ([`QuarantineEntry`](yoso_core::search::QuarantineEntry)). The
/// serving surface rides along too: the daemon
/// ([`Server`](yoso_server::Server) / [`ServerConfig`](yoso_server::ServerConfig)),
/// the blocking [`Client`](yoso_client::Client), its self-healing
/// wrapper ([`ResilientClient`](yoso_client::ResilientClient) under a
/// [`RetryPolicy`](yoso_client::RetryPolicy)), the crash-recovery
/// journal ([`Journal`](yoso_server::journal::Journal) /
/// [`Recovery`](yoso_server::journal::Recovery)) and the versioned wire
/// types ([`JobSpec`](yoso_server::proto::JobSpec),
/// [`JobStatus`](yoso_server::proto::JobStatus),
/// [`ErrorCode`](yoso_server::proto::ErrorCode), …). The
/// multi-objective surface (DESIGN.md §12) completes the set: the
/// typed [`Objectives`](yoso_core::archive::Objectives) point, rank
/// axis [`Objective`](yoso_core::archive::Objective), deployment
/// [`FeasibilityCaps`](yoso_core::archive::FeasibilityCaps), the
/// [`ParetoArchive`](yoso_core::archive::ParetoArchive) itself, its
/// wire form ([`ParetoFront`](yoso_server::proto::ParetoFront)) and
/// the surrogate selector
/// ([`SurrogateKind`](yoso_core::evaluation::SurrogateKind)).
pub mod prelude {
    pub use yoso_chaos::{FaultKind, FaultPlan, FaultRule};
    pub use yoso_client::{Client, ClientError, ResilientClient, RetryPolicy};
    pub use yoso_core::archive::{FeasibilityCaps, Objective, Objectives, ParetoArchive};
    pub use yoso_core::checkpoint::{latest_checkpoint, SessionCheckpoint};
    pub use yoso_core::error::{error_chain, Error};
    pub use yoso_core::evaluation::{
        calibrate_constraints, AccurateEvaluator, Evaluation, Evaluator, FastEvaluator,
        SurrogateEvaluator, SurrogateKind,
    };
    pub use yoso_core::reward::{Constraints, NonFiniteMetric, RewardConfig, RewardForm};
    pub use yoso_core::search::{
        QuarantineEntry, SearchConfig, SearchConfigBuilder, SearchOutcome, SearchRecord,
        QUARANTINE_REWARD,
    };
    pub use yoso_core::session::{SearchEvent, SearchSession, SearchSessionBuilder, Strategy};
    pub use yoso_persist::{PersistError, Snapshot, SnapshotArchive, SnapshotBuilder};
    pub use yoso_pool::{ItemOutcome, PoolError, SupervisorConfig};
    pub use yoso_server::journal::{Journal, Record, RecoveredJob, Recovery};
    pub use yoso_server::proto::{
        ErrorCode, JobDone, JobSpec, JobState, JobStatus, ParetoEntry, ParetoFront, Reply, Request,
        ServerStats, PROTO_VERSION,
    };
    pub use yoso_server::{Server, ServerConfig};
    pub use yoso_trace::{Event, Trace};
}
