//! # yoso
//!
//! Facade crate for the YOSO reproduction — *"You Only Search Once: A
//! Fast Automation Framework for Single-Stage DNN/Accelerator Co-design"*
//! (Chen et al., DATE 2020).
//!
//! Each subsystem lives in its own crate and is re-exported here:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`tensor`] | `yoso-tensor` | CPU tensor + autograd engine |
//! | [`dataset`] | `yoso-dataset` | SynthCifar procedural dataset |
//! | [`arch`] | `yoso-arch` | joint search space + action codec |
//! | [`nn`] | `yoso-nn` | trainable cell networks |
//! | [`accel`] | `yoso-accel` | systolic-array simulator |
//! | [`predictor`] | `yoso-predictor` | GP & friends performance predictors |
//! | [`controller`] | `yoso-controller` | LSTM + REINFORCE agent |
//! | [`hypernet`] | `yoso-hypernet` | one-shot weight-sharing supernet |
//! | [`core`] | `yoso-core` | rewards, evaluators, search, baselines |
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the experiment index.

#![forbid(unsafe_code)]

pub use yoso_accel as accel;
pub use yoso_arch as arch;
pub use yoso_controller as controller;
pub use yoso_core as core;
pub use yoso_dataset as dataset;
pub use yoso_hypernet as hypernet;
pub use yoso_nn as nn;
pub use yoso_predictor as predictor;
pub use yoso_tensor as tensor;
