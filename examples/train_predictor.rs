//! Builds the Gaussian-process hardware performance predictor from
//! simulator samples (paper §III-E), reports its held-out error, and
//! measures how much faster prediction is than exact simulation.
//!
//! Run with: `cargo run --release --example train_predictor`

use std::time::Instant;
use yoso::accel::Simulator;
use yoso::arch::{DesignPoint, NetworkSkeleton};
use yoso::core::Error;
use yoso::predictor::perf::{collect_samples, PerfPredictor};

fn main() -> Result<(), Error> {
    let skeleton = NetworkSkeleton::paper_default();
    let sim = Simulator::exact();

    println!("collecting simulator samples ...");
    let t0 = Instant::now();
    let train = collect_samples(&skeleton, &sim, 600, 0);
    let test = collect_samples(&skeleton, &sim, 150, 1);
    println!(
        "  {} train + {} test samples in {:.1?}",
        train.len(),
        test.len(),
        t0.elapsed()
    );

    println!("fitting latency & energy GPs ...");
    let t1 = Instant::now();
    let predictor = PerfPredictor::train(&skeleton, &train)?;
    println!("  fitted in {:.1?}", t1.elapsed());

    let (lat_mape, eer_mape) = predictor.evaluate(&test);
    println!(
        "held-out error: latency MAPE {:.2}%, energy MAPE {:.2}% (paper: <4% at 3000 samples)",
        lat_mape * 100.0,
        eer_mape * 100.0
    );

    // Speed comparison: GP prediction vs exact simulation.
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2);
    let probes: Vec<DesignPoint> = (0..50).map(|_| DesignPoint::random(&mut rng)).collect();
    let t_sim = Instant::now();
    for p in &probes {
        let plan = skeleton.compile(&p.genotype);
        let _ = sim.simulate_plan(&plan, &p.hw);
    }
    let sim_time = t_sim.elapsed();
    let t_gp = Instant::now();
    for p in &probes {
        let _ = predictor.predict(p);
    }
    let gp_time = t_gp.elapsed();
    println!(
        "speed: exact simulation {:.2?}/candidate, GP prediction {:.2?}/candidate ({:.0}x faster)",
        sim_time / probes.len() as u32,
        gp_time / probes.len() as u32,
        sim_time.as_secs_f64() / gp_time.as_secs_f64().max(1e-12)
    );
    Ok(())
}
