//! Quickstart: sample a joint DNN/accelerator design point, round-trip it
//! through the 44-symbol action codec, compile it to a layer workload,
//! simulate it on the systolic-array model, and score it with the
//! composite reward.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use yoso::accel::Simulator;
use yoso::arch::{cardinality, ActionSpace, DesignPoint, NetworkSkeleton};
use yoso::core::evaluation::{calibrate_constraints, SurrogateEvaluator};
use yoso::core::reward::RewardConfig;
use yoso::core::{Error, Evaluator};

fn main() -> Result<(), Error> {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. The joint search space.
    let card = cardinality();
    println!(
        "Joint search space: 10^{:.1} networks x {} accelerator configs = 10^{:.1} candidates",
        card.log10_networks, card.hw_configs, card.log10_combined
    );

    // 2. Sample a candidate and round-trip the action encoding.
    let point = DesignPoint::random(&mut rng);
    let space = ActionSpace::new();
    let actions = space.encode(&point);
    assert_eq!(space.decode(&actions).unwrap(), point);
    println!(
        "\nSampled candidate (as {} actions): {:?}",
        actions.len(),
        actions
    );
    println!("  hardware: {}", point.hw);

    // 3. Compile the genotype into a concrete layer workload.
    let skeleton = NetworkSkeleton::paper_default();
    let plan = skeleton.compile(&point.genotype);
    println!(
        "\nCompiled network: {} layers, {:.1} MMACs, {:.1}k weights",
        plan.layers.len(),
        plan.stats.total_macs as f64 / 1e6,
        plan.stats.total_weights as f64 / 1e3
    );

    // 4. Simulate it on the configured accelerator.
    let report = Simulator::exact().simulate_plan(&plan, &point.hw);
    println!("Simulated on {}: {report}", point.hw);
    let e = &report.energy_breakdown;
    println!(
        "  energy split: compute {:.1}% | rbuf {:.1}% | noc {:.1}% | gbuf {:.1}% | dram {:.1}%",
        100.0 * e.compute_pj / e.total_pj(),
        100.0 * e.rbuf_pj / e.total_pj(),
        100.0 * e.noc_pj / e.total_pj(),
        100.0 * e.gbuf_pj / e.total_pj(),
        100.0 * e.dram_pj / e.total_pj()
    );

    // 5. Score it with the paper's composite reward (Eq. 2).
    let constraints = calibrate_constraints(&skeleton, 200, 7, 40.0);
    println!(
        "\nCalibrated constraints (40th pct of random designs): t_lat {:.4} ms, t_eer {:.4} mJ",
        constraints.t_lat_ms, constraints.t_eer_mj
    );
    let reward_cfg = RewardConfig::balanced(constraints);
    let evaluator = SurrogateEvaluator::new(skeleton);
    let eval = evaluator.evaluate(&point)?;
    let reward = reward_cfg.reward(eval.accuracy, eval.latency_ms, eval.energy_mj);
    println!(
        "Evaluation: accuracy {:.3}, latency {:.4} ms, energy {:.4} mJ -> reward {reward:.4}",
        eval.accuracy, eval.latency_ms, eval.energy_mj
    );
    Ok(())
}
