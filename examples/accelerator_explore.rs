//! Hardware design-space exploration for a *fixed* network: sweeps every
//! accelerator configuration (the two-stage baseline's stage 2) and
//! prints how PE array size, buffering and dataflow shape the
//! latency/energy landscape.
//!
//! Run with: `cargo run --release --example accelerator_explore`

use yoso::accel::Simulator;
use yoso::arch::{Dataflow, HwConfig, NetworkSkeleton, PE_MENU};
use yoso::core::{best_hw_for, parallel_map, reference_models, Constraints, OptimizationTarget};

fn main() {
    let skeleton = NetworkSkeleton::paper_default();
    let model = &reference_models()[0]; // NasNet-A stand-in
    let plan = skeleton.compile(&model.genotype);
    println!(
        "network: {} ({} layers, {:.1} MMACs)",
        model.name,
        plan.layers.len(),
        plan.stats.total_macs as f64 / 1e6
    );

    let sim = Simulator::exact();
    let configs: Vec<HwConfig> = HwConfig::enumerate_all().collect();
    let reports = parallel_map(configs.len(), 16, |i| sim.simulate_plan(&plan, &configs[i]));

    // Dataflow summary: best-achievable energy/latency per dataflow.
    println!("\nper-dataflow best (over all array/buffer choices):");
    println!("{:<6} {:>14} {:>14}", "flow", "energy(mJ)", "latency(ms)");
    for df in Dataflow::ALL {
        let best_e = configs
            .iter()
            .zip(&reports)
            .filter(|(c, _)| c.dataflow == df)
            .map(|(_, r)| r.energy_mj)
            .fold(f64::INFINITY, f64::min);
        let best_l = configs
            .iter()
            .zip(&reports)
            .filter(|(c, _)| c.dataflow == df)
            .map(|(_, r)| r.latency_ms)
            .fold(f64::INFINITY, f64::min);
        println!("{df:<6} {best_e:>14.4} {best_l:>14.4}");
    }

    // PE-array scaling at fixed buffers/dataflow.
    println!("\nPE-array scaling (512KB gbuf, 512B rbuf, WS):");
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>8}",
        "array", "PEs", "energy(mJ)", "latency(ms)", "util%"
    );
    for pe in PE_MENU {
        let hw = HwConfig {
            pe,
            gbuf_kb: 512,
            rbuf_bytes: 512,
            dataflow: Dataflow::Ws,
        };
        let r = sim.simulate_plan(&plan, &hw);
        println!(
            "{:<8} {:>8} {:>14.4} {:>14.4} {:>8.1}",
            pe.to_string(),
            pe.count(),
            r.energy_mj,
            r.latency_ms,
            r.utilization * 100.0
        );
    }

    // Constrained optimum per objective.
    let constraints = Constraints {
        t_lat_ms: f64::INFINITY,
        t_eer_mj: f64::INFINITY,
    };
    let best_e = best_hw_for(
        &model.genotype,
        &skeleton,
        &sim,
        &constraints,
        OptimizationTarget::Energy,
    );
    let best_l = best_hw_for(
        &model.genotype,
        &skeleton,
        &sim,
        &constraints,
        OptimizationTarget::Latency,
    );
    println!(
        "\nenergy-optimal config: {}  ({:.4} mJ, {:.4} ms)",
        best_e.hw, best_e.report.energy_mj, best_e.report.latency_ms
    );
    println!(
        "latency-optimal config: {}  ({:.4} mJ, {:.4} ms)",
        best_l.hw, best_l.report.energy_mj, best_l.report.latency_ms
    );
}
