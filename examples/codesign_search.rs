//! End-to-end single-stage co-design at demo scale: builds the fast
//! evaluator (HyperNet + GP predictors), runs the RL search in the joint
//! space, and accurately reranks the top candidates — the paper's three
//! steps, in minutes on a CPU.
//!
//! Run with: `cargo run --release --example codesign_search`

use yoso::arch::NetworkSkeleton;
use yoso::core::evaluation::{calibrate_constraints, AccurateEvaluator, FastEvaluator};
use yoso::core::reward::RewardConfig;
use yoso::core::{run_search_and_finalize, Error, SearchConfig};
use yoso::dataset::{SynthCifar, SynthCifarConfig};
use yoso::hypernet::HyperTrainConfig;
use yoso::nn::TrainConfig;

fn main() -> Result<(), Error> {
    // Demo scale: small skeleton and dataset so this finishes quickly.
    let skeleton = NetworkSkeleton::tiny();
    let mut data_cfg = SynthCifarConfig::tiny();
    data_cfg.train_count = 512;
    let data = SynthCifar::generate(&data_cfg);

    // Step 1: fast evaluator construction.
    println!("[1/3] training HyperNet and GP predictors ...");
    let hyper_cfg = HyperTrainConfig {
        epochs: 4,
        batch_size: 32,
        augment: false,
        ..Default::default()
    };
    let fast = FastEvaluator::build(&skeleton, &data, &hyper_cfg, 250, 0)?;

    // Step 2: RL search in the joint space.
    println!("[2/3] RL search over the joint DNN+accelerator space ...");
    let constraints = calibrate_constraints(&skeleton, 200, 1, 40.0);
    let reward_cfg = RewardConfig::balanced(constraints);
    let search_cfg = SearchConfig {
        iterations: 300,
        rollouts_per_update: 8,
        seed: 0,
        ..SearchConfig::default()
    };

    // Step 3: accurate top-N reranking.
    println!("[3/3] reranking top candidates with full training + exact simulation ...");
    let mut train_cfg = TrainConfig::fast_test();
    train_cfg.epochs = 4;
    let accurate = AccurateEvaluator::new(skeleton.clone(), data, train_cfg);
    let result = run_search_and_finalize(&fast, &accurate, &reward_cfg, &search_cfg, 3)?;

    let rb = result.outcome.running_best_reward();
    println!(
        "\nsearch: {} candidates, best reward {:.4} (first-100 best {:.4})",
        result.outcome.history.len(),
        rb.last().unwrap(),
        rb[99.min(rb.len() - 1)]
    );
    println!("\nfinalists (accurate metrics):");
    println!(
        "{:<4} {:>8} {:>12} {:>12} {:>10}  configuration",
        "#", "acc", "latency(ms)", "energy(mJ)", "reward"
    );
    for (i, f) in result.finalists.iter().enumerate() {
        println!(
            "{:<4} {:>8.3} {:>12.4} {:>12.4} {:>10.4}  {}",
            i + 1,
            f.accurate_eval.accuracy,
            f.accurate_eval.latency_ms,
            f.accurate_eval.energy_mj,
            f.accurate_reward,
            f.point.hw
        );
    }
    let best = result.best();
    println!("\nchampion genotype: {}", best.point.genotype);
    println!("champion hardware: {}", best.point.hw);
    Ok(())
}
