//! Searcher bake-off on the joint co-design space: the paper's RL
//! controller vs regularized evolution (extension) vs random search,
//! under identical evaluation budgets and the same composite reward.
//!
//! Run with: `cargo run --release --example evolution_vs_rl`

use yoso::arch::NetworkSkeleton;
use yoso::core::evaluation::{calibrate_constraints, SurrogateEvaluator};
use yoso::core::reward::RewardConfig;
use yoso::core::session::{SearchSession, Strategy};
use yoso::core::{Error, SearchConfig, SearchOutcome};

fn tail_mean(o: &SearchOutcome) -> f64 {
    let k = (o.history.len() / 4).max(1);
    o.history[o.history.len() - k..]
        .iter()
        .map(|r| r.reward)
        .sum::<f64>()
        / k as f64
}

fn main() -> Result<(), Error> {
    let skeleton = NetworkSkeleton::paper_default();
    let evaluator = SurrogateEvaluator::new(skeleton.clone());
    let constraints = calibrate_constraints(&skeleton, 200, 0, 40.0);
    let reward = RewardConfig::balanced(constraints);
    let cfg = SearchConfig {
        iterations: 1000,
        rollouts_per_update: 10,
        seed: 0,
        ..SearchConfig::default()
    };

    println!(
        "searching {} candidates with each strategy ...\n",
        cfg.iterations
    );
    let search = |strategy| {
        SearchSession::builder()
            .evaluator(&evaluator)
            .reward(reward)
            .config(cfg.clone())
            .strategy(strategy)
            .run()
    };
    let rl = search(Strategy::Rl)?;
    let evo = search(Strategy::Evolution)?;
    let rnd = search(Strategy::Random)?;

    println!("{:<22} {:>10} {:>14}", "strategy", "best", "tail-qtr mean");
    for (name, o) in [
        ("RL (paper)", &rl),
        ("regularized evolution", &evo),
        ("random", &rnd),
    ] {
        println!(
            "{:<22} {:>10.4} {:>14.4}",
            name,
            o.best().reward,
            tail_mean(o)
        );
    }

    let champion = [&rl, &evo, &rnd]
        .into_iter()
        .max_by(|a, b| a.best().reward.total_cmp(&b.best().reward))
        .expect("three searchers");
    let best = champion.best();
    println!(
        "\nchampion: acc {:.3}, {:.4} ms, {:.4} mJ on {}",
        best.eval.accuracy, best.eval.latency_ms, best.eval.energy_mj, best.point.hw
    );
    Ok(())
}
