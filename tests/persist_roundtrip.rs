//! Facade-level persistence contracts: every stateful component saves
//! and reloads through the `yoso::prelude` snapshot surface with
//! bit-identical results, and damaged files come back as typed
//! [`PersistError`]s — never a panic, never silently-wrong state.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use yoso::prelude::*;

/// Serializes one value into a single-section container.
fn snap_bytes<T: Snapshot>(v: &T) -> Vec<u8> {
    let mut b = SnapshotBuilder::new("test.roundtrip");
    b.put("v", v);
    b.to_bytes()
}

/// save -> load, panicking on any container error.
fn restored<T: Snapshot>(v: &T) -> T {
    SnapshotArchive::from_bytes(&snap_bytes(v))
        .expect("well-formed container")
        .get::<T>("v")
        .expect("section present")
}

/// The gold standard: re-serializing the restored value must reproduce
/// the original byte stream exactly.
fn assert_bit_identical<T: Snapshot>(v: &T, what: &str) {
    assert_eq!(
        snap_bytes(v),
        snap_bytes(&restored(v)),
        "{what} drifted through save->load"
    );
}

#[test]
fn updated_controller_roundtrips_bit_identically() {
    use yoso::controller::{Controller, ControllerConfig};
    let mut cfg = ControllerConfig::paper_default(vec![4, 6, 3, 5, 2]);
    cfg.hidden = 12;
    cfg.embed = 6;
    cfg.seed = 9;
    let mut ctrl = Controller::new(cfg);
    // A few REINFORCE updates so the LSTM weights, Adam moments and
    // baseline all hold non-initial state.
    let mut rng = StdRng::seed_from_u64(5);
    for step in 0..3 {
        let batch: Vec<_> = (0..4)
            .map(|i| (ctrl.sample(&mut rng), 0.1 * (step + i) as f64))
            .collect();
        ctrl.update(&batch);
    }
    assert_bit_identical(&ctrl, "Controller");
    // The restored policy must sample the exact same rollouts.
    let reloaded = restored(&ctrl);
    let mut ra = StdRng::seed_from_u64(77);
    let mut rb = StdRng::seed_from_u64(77);
    for _ in 0..5 {
        let a = ctrl.sample(&mut ra);
        let b = reloaded.sample(&mut rb);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
    }
}

#[test]
fn gp_perf_predictor_roundtrips_and_predicts_identically() {
    use yoso::accel::Simulator;
    use yoso::arch::{DesignPoint, NetworkSkeleton};
    use yoso::predictor::perf::{collect_samples, PerfPredictor};
    let sk = NetworkSkeleton::tiny();
    let train = collect_samples(&sk, &Simulator::fast(), 40, 3);
    let pred = PerfPredictor::train(&sk, &train).expect("enough samples");
    assert_bit_identical(&pred, "PerfPredictor");
    let reloaded = restored(&pred);
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..8 {
        let p = DesignPoint::random(&mut rng);
        let (l0, e0) = pred.predict(&p);
        let (l1, e1) = reloaded.predict(&p);
        assert_eq!(l0.to_bits(), l1.to_bits(), "latency prediction drifted");
        assert_eq!(e0.to_bits(), e1.to_bits(), "energy prediction drifted");
    }
}

#[test]
fn hypernet_roundtrips_bit_identically() {
    use yoso::arch::NetworkSkeleton;
    use yoso::hypernet::HyperNet;
    let hyper = HyperNet::new(NetworkSkeleton::tiny(), 21);
    assert_bit_identical(&hyper, "HyperNet");
}

#[test]
fn corrupted_snapshot_is_a_typed_checksum_error() {
    let path = std::env::temp_dir().join(format!(
        "yoso-persist-facade-corrupt-{}.snap",
        std::process::id()
    ));
    let mut b = SnapshotBuilder::new("test.corrupt");
    b.section("payload", |w| w.put_f64s(&[1.0, 2.0, 3.0]));
    b.write_atomic(&path).expect("atomic write");
    let mut bytes = std::fs::read(&path).expect("read back");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF; // flip a payload byte
    std::fs::write(&path, &bytes).expect("re-write damaged file");
    let err = SnapshotArchive::read(&path).expect_err("must be rejected");
    assert!(
        matches!(err, PersistError::ChecksumMismatch { .. }),
        "wrong error for corruption: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_snapshot_is_a_typed_truncation_error() {
    let path = std::env::temp_dir().join(format!(
        "yoso-persist-facade-trunc-{}.snap",
        std::process::id()
    ));
    let mut b = SnapshotBuilder::new("test.trunc");
    b.section("payload", |w| w.put_f64s(&[4.0; 32]));
    b.write_atomic(&path).expect("atomic write");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
    let err = SnapshotArchive::read(&path).expect_err("must be rejected");
    assert!(
        matches!(err, PersistError::Truncated { .. }),
        "wrong error for truncation: {err}"
    );
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Evaluations survive the container for *any* f64 bit pattern —
    /// negative zero, subnormals, infinities and NaNs included.
    #[test]
    fn evaluation_roundtrips_for_arbitrary_bit_patterns(
        a in any::<u64>(), l in any::<u64>(), e in any::<u64>(),
    ) {
        let eval = Evaluation {
            accuracy: f64::from_bits(a),
            latency_ms: f64::from_bits(l),
            energy_mj: f64::from_bits(e),
        };
        prop_assert_eq!(snap_bytes(&eval), snap_bytes(&restored(&eval)));
    }

    /// Search configurations round-trip exactly over their whole domain.
    #[test]
    fn search_config_roundtrips(
        iterations in 0usize..1_000_000,
        rollouts in 1usize..64,
        seed in any::<u64>(),
        population in 1usize..512,
        tournament in 1usize..64,
    ) {
        let cfg = SearchConfig::builder()
            .iterations(iterations)
            .rollouts_per_update(rollouts)
            .seed(seed)
            .population(population)
            .tournament(tournament)
            .build();
        let back: SearchConfig = restored(&cfg);
        prop_assert_eq!(back, cfg);
    }
}
