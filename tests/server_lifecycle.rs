//! Server lifecycle integration tests: the co-design-as-a-service
//! daemon end to end over real TCP.
//!
//! The central contract is determinism: a job served over the wire
//! must stream the *byte-identical* `search_iter` JSONL that the same
//! seed produces in-process, including across a
//! suspend → server-restart → resume cycle, and including when a
//! chaos plan is faulting a *different* tenant on the same server.

use std::sync::atomic::{AtomicU64, Ordering};

use yoso::prelude::*;
use yoso_server::proto::Request;

fn tiny_reward() -> RewardConfig {
    let sk = yoso::arch::NetworkSkeleton::tiny();
    RewardConfig::balanced(calibrate_constraints(&sk, 50, 0, 50.0))
}

fn spec(tenant: &str, iterations: usize, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(tenant, tiny_reward());
    spec.config = yoso::core::SearchConfig {
        iterations,
        rollouts_per_update: 3,
        seed,
        population: 10,
        tournament: 3,
    };
    spec
}

/// The same search run in-process, returning its `search_iter` lines.
/// Checkpoint cadence never changes the trace, so it is dropped here
/// rather than wiring up a scratch directory.
fn in_process_lines(spec: &JobSpec) -> Vec<String> {
    let mut spec = spec.clone();
    spec.checkpoint_every = None;
    let evaluator = SurrogateEvaluator::new(yoso::arch::NetworkSkeleton::tiny());
    let trace = Trace::memory();
    spec.apply(SearchSession::builder())
        .evaluator(&evaluator)
        .trace(trace.clone())
        .run()
        .expect("in-process run");
    search_iter_lines(&trace.lines())
}

fn search_iter_lines(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .filter(|l| l.starts_with("{\"event\":\"search_iter\""))
        .cloned()
        .collect()
}

/// Fresh checkpoint root per test so parallel tests never collide.
fn temp_root(tag: &str) -> std::path::PathBuf {
    static SALT: AtomicU64 = AtomicU64::new(0);
    let n = SALT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("yoso_server_{tag}_{}_{n}", std::process::id()))
}

/// These tests share one process and chaos plans are global — an
/// unscoped network-fault plan armed by one test would corrupt another
/// test's wire traffic. Every test serializes on the chaos test lock
/// and clears any plan a panicked predecessor left armed.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    let guard = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    guard
}

#[test]
fn served_stream_is_byte_identical_to_in_process_run() {
    let _guard = serial();
    let server = Server::start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let spec = spec("equiv", 9, 42);
    let job = client.submit(&spec, true).unwrap();
    let (lines, done) = client.wait_done(job).unwrap();
    assert_eq!(done.state, JobState::Completed);
    assert_eq!(done.iterations, 9);
    assert!(done.best_reward.is_some());

    let served = search_iter_lines(&lines);
    assert_eq!(served.len(), 9);
    assert_eq!(served, in_process_lines(&spec), "served stream diverged");

    // The replay path serves the same bytes again after completion.
    let mut late = Client::connect(server.addr()).unwrap();
    let status = late.subscribe(job).unwrap();
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(status.iterations_done, 9);
    let (replayed, done2) = late.wait_done(job).unwrap();
    assert_eq!(search_iter_lines(&replayed), served);
    assert_eq!(done2.state, JobState::Completed);

    server.shutdown();
}

#[test]
fn suspend_resume_across_server_restart_is_bit_identical() {
    let _guard = serial();
    let root = temp_root("resume");
    let cfg = ServerConfig {
        checkpoint_root: Some(root.clone()),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let spec = spec("suspender", 120, 7);
    let mut spec = spec;
    spec.checkpoint_every = Some(6);
    let job = client.submit(&spec, true).unwrap();

    // Let at least one iteration stream, then ask for suspension; the
    // session stops at its next controller-update boundary and writes
    // a suspend checkpoint.
    let first = client.next_event().unwrap();
    assert!(matches!(first, Reply::Event { .. }));
    client.suspend(job).unwrap();
    let (pre_raw, done) = client.wait_done(job).unwrap();
    assert_eq!(done.state, JobState::Suspended);
    let mut pre = search_iter_lines(&pre_raw);
    // One event was consumed by hand above.
    if let Reply::Event { line, .. } = first {
        if line.starts_with("{\"event\":\"search_iter\"") {
            pre.insert(0, line);
        }
    }
    assert!(
        !pre.is_empty() && pre.len() < 120,
        "suspend landed mid-run ({} iterations)",
        pre.len()
    );
    let status = client.status(job).unwrap();
    assert_eq!(status.state, JobState::Suspended);
    assert!(status.checkpoint.is_some(), "suspend wrote a checkpoint");
    drop(client);
    server.shutdown();

    // A brand-new server process state: resume purely from disk.
    let server2 = Server::start(ServerConfig {
        checkpoint_root: Some(root.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client2 = Client::connect(server2.addr()).unwrap();
    let status = client2.resume(job, true).unwrap();
    assert_eq!(status.job, job);
    assert_eq!(status.tenant, "suspender");
    let (post_raw, done2) = client2.wait_done(job).unwrap();
    assert_eq!(done2.state, JobState::Completed);
    assert_eq!(done2.iterations, 120);
    let post = search_iter_lines(&post_raw);

    let mut stitched = pre;
    stitched.extend(post);
    assert_eq!(
        stitched,
        in_process_lines(&spec),
        "suspend/restart/resume diverged from the uninterrupted run"
    );
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn served_pareto_front_matches_the_in_process_archive() {
    let _guard = serial();
    let server = Server::start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let spec = spec("multi", 12, 21);
    let job = client.submit(&spec, true).unwrap();
    let (_, done) = client.wait_done(job).unwrap();
    assert_eq!(done.state, JobState::Completed);

    // Same seed in-process: the served frame must carry exactly this
    // run's non-dominated archive, value-identical after the codec.
    let evaluator = SurrogateEvaluator::new(yoso::arch::NetworkSkeleton::tiny());
    let outcome = spec
        .apply(SearchSession::builder())
        .evaluator(&evaluator)
        .run()
        .expect("in-process run");
    let expected = yoso_server::pareto_front_of(job, &outcome);
    assert!(!expected.entries.is_empty());

    let served = client
        .pareto_front(job)
        .expect("pareto_front streamed before job_done");
    assert_eq!(*served, expected);

    // The replay path hands a late subscriber the identical frame.
    let mut late = Client::connect(server.addr()).unwrap();
    late.subscribe(job).unwrap();
    let (_, done2) = late.wait_done(job).unwrap();
    assert_eq!(done2.state, JobState::Completed);
    assert_eq!(late.pareto_front(job), Some(&expected));

    server.shutdown();
}

#[test]
fn rejection_paths_return_typed_error_codes() {
    let _guard = serial();
    let server = Server::start(ServerConfig {
        max_concurrent_jobs: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Unknown job.
    let err = client.status(9_999).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::UnknownJob));

    // Malformed frame and version mismatch, straight over the socket.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut reply = String::new();

        writeln!(raw, "this is not a frame").unwrap();
        reader.read_line(&mut reply).unwrap();
        match Reply::parse(reply.trim()).unwrap() {
            Reply::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedFrame),
            other => panic!("expected error frame, got {other:?}"),
        }

        reply.clear();
        writeln!(raw, "{}", Event::new("stats").with_u64("v", 99).to_json()).unwrap();
        reader.read_line(&mut reply).unwrap();
        match Reply::parse(reply.trim()).unwrap() {
            Reply::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
            other => panic!("expected error frame, got {other:?}"),
        }
    }

    // Saturate the single runner with a long job, then fill the
    // one-slot queue; the next submit must bounce with AdmissionFull.
    let blocker = client.submit(&spec("hog", 4_000, 1), false).unwrap();
    for _ in 0..1_000 {
        if client.status(blocker).unwrap().state == JobState::Running {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(client.status(blocker).unwrap().state, JobState::Running);
    let queued = client.submit(&spec("hog", 10, 2), false).unwrap();
    let err = client.submit(&spec("hog", 10, 3), false).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::AdmissionFull));

    // Resuming a job that is not suspended is a typed state error.
    let err = client.resume(blocker, false).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::InvalidState));
    let err = client.resume(queued, false).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::InvalidState));

    // After a shutdown request, submits are refused.
    client.request(&Request::Shutdown).unwrap();
    let err = client.submit(&spec("hog", 10, 4), false).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::ShuttingDown));

    server.shutdown();
}

#[test]
fn scoped_chaos_faults_one_tenant_and_spares_others() {
    let _guard = serial();
    // Baseline before arming chaos: what the clean tenant's stream
    // must keep looking like.
    let clean_spec = spec("bystander", 9, 99);
    let baseline = in_process_lines(&clean_spec);

    // Every reward for the victim tenant's scope goes NaN; nobody
    // else matches the scope, so no other thread can fault.
    let mut plan = FaultPlan::new(11);
    plan.rules
        .push(FaultRule::rate(FaultKind::NanReward, 1.0).scope(yoso::chaos::scope_for("victim")));
    yoso::chaos::install(&plan);

    let server = Server::start(ServerConfig {
        tenant_fault_budget: Some(1),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // The victim's job degrades gracefully until its per-job fault
    // budget trips, then the job fails with the typed core error.
    let mut victim = spec("victim", 30, 5);
    victim.fault_budget = Some(2);
    let job = client.submit(&victim, true).unwrap();
    let (_, done) = client.wait_done(job).unwrap();
    assert_eq!(done.state, JobState::Failed);
    let msg = done.error.expect("failed job carries its error");
    assert!(
        msg.contains("fault budget exhausted"),
        "unexpected failure: {msg}"
    );
    let status = client.status(job).unwrap();
    assert_eq!(status.state, JobState::Failed);

    // The tenant's ledger is now over the server-side budget: further
    // submissions from the same tenant bounce with a typed code.
    let err = client.submit(&victim, false).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::FaultBudgetExhausted));

    // A clean tenant on the same faulted server is untouched:
    // byte-identical to the chaos-free in-process baseline.
    let clean_job = client.submit(&clean_spec, true).unwrap();
    let (lines, clean_done) = client.wait_done(clean_job).unwrap();
    assert_eq!(clean_done.state, JobState::Completed);
    assert_eq!(search_iter_lines(&lines), baseline);

    server.shutdown();
    yoso::chaos::disarm();
}

/// Crash recovery, end to end: a journal describing a job interrupted
/// mid-run (admitted, lines streamed, **no** terminal record — exactly
/// what a SIGKILL leaves behind) is replayed at startup, the job
/// auto-resumes from its newest checkpoint, and a client subscribing
/// to the recovered job collects the byte-identical `search_iter`
/// stream of an uninterrupted in-process run — zero lost, zero
/// duplicated iterations.
#[test]
fn journal_recovery_resumes_interrupted_jobs_byte_identically() {
    let _guard = serial();
    let root = temp_root("recover");
    let mut spec = spec("phoenix", 24, 1234);
    spec.checkpoint_every = Some(6);
    let job_id = 1u64;
    let job_dir = root.join(job_id.to_string());

    // Fabricate the crashed daemon's disk state by running the same
    // seed in-process with the job's checkpoint dir, capturing the
    // full line stream, then journaling only a prefix: everything up
    // to two iterations past the 12-iteration checkpoint, as if the
    // process died there.
    std::fs::create_dir_all(&job_dir).unwrap();
    let evaluator = SurrogateEvaluator::new(yoso::arch::NetworkSkeleton::tiny());
    let trace = Trace::memory();
    spec.apply(SearchSession::builder())
        .evaluator(&evaluator)
        .checkpoint_dir(job_dir.clone())
        .trace(trace.clone())
        .run()
        .expect("seed run");
    let all_lines = trace.lines();
    let full_stream = search_iter_lines(&all_lines);
    assert_eq!(full_stream.len(), 24);

    // Keep only the newest pre-crash checkpoint (iteration 12) plus an
    // older one, mimicking the cadence's retention.
    for stale in ["ckpt_00000018.snap", "ckpt_00000024.snap"] {
        let _ = std::fs::remove_file(job_dir.join(stale));
    }
    std::fs::write(job_dir.join("spec.json"), format!("{}\n", spec.to_json())).unwrap();
    let mut journal = Journal::open(&root, 0).unwrap();
    journal
        .append(&Record::Admit {
            job: job_id,
            spec_json: spec.to_json(),
        })
        .unwrap();
    let mut iters = 0;
    for line in &all_lines {
        if line.starts_with("{\"event\":\"search_iter\"") {
            iters += 1;
        }
        journal
            .append(&Record::Line {
                job: job_id,
                line: line.clone(),
            })
            .unwrap();
        if iters == 14 {
            break; // crash point: two iterations past the checkpoint
        }
    }
    journal.sync().unwrap();
    drop(journal);

    // Restart: recovery must re-admit the job, auto-resume it from the
    // iteration-12 checkpoint, and re-emit iterations 13.. exactly.
    let server = Server::start(ServerConfig {
        checkpoint_root: Some(root.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.subscribe(job_id).unwrap();
    let (lines, done) = client.wait_done(job_id).unwrap();
    assert_eq!(done.state, JobState::Completed);
    assert_eq!(done.iterations, 24);
    assert_eq!(
        search_iter_lines(&lines),
        full_stream,
        "recovered job's stream diverged from the uninterrupted run"
    );
    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_recovered, 1);

    // The journal was compacted + extended: a second restart restores
    // the job as completed, fully replayable, without re-running it.
    drop(client);
    server.shutdown();
    let server2 = Server::start(ServerConfig {
        checkpoint_root: Some(root.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client2 = Client::connect(server2.addr()).unwrap();
    let status = client2.subscribe(job_id).unwrap();
    assert_eq!(status.state, JobState::Completed);
    let (replayed, done2) = client2.wait_done(job_id).unwrap();
    assert_eq!(done2.state, JobState::Completed);
    assert_eq!(search_iter_lines(&replayed), full_stream);
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// A corrupted journal is a typed, recoverable condition: the damaged
/// job is skipped (not crashed on), intact jobs recover normally, and
/// the daemon starts.
#[test]
fn corrupt_journal_records_skip_the_job_not_the_server() {
    let _guard = serial();
    let root = temp_root("corrupt");
    std::fs::create_dir_all(&root).unwrap();
    let good = spec("survivor", 5, 77);
    let mut journal = Journal::open(&root, 0).unwrap();
    journal
        .append(&Record::Admit {
            job: 1,
            spec_json: good.to_json(),
        })
        .unwrap();
    journal
        .append(&Record::Admit {
            job: 2,
            spec_json: "{not json at all".to_string(),
        })
        .unwrap();
    journal.sync().unwrap();
    drop(journal);

    // Flip a byte inside the first record's payload: checksum mismatch
    // → the record is skipped and job 1 never admits; job 2's admit
    // decodes but its spec is unparseable → skipped at restore.
    let path = yoso_server::journal::journal_path(&root);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[16] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let recovery = yoso_server::journal::recover(&root).unwrap();
    assert_eq!(recovery.corrupt_records, 1, "typed corruption count");

    let server = Server::start(ServerConfig {
        checkpoint_root: Some(root.clone()),
        max_concurrent_jobs: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // Neither damaged job exists; the server is healthy for new work.
    assert_eq!(
        client.status(1).unwrap_err().code(),
        Some(ErrorCode::UnknownJob)
    );
    assert_eq!(
        client.status(2).unwrap_err().code(),
        Some(ErrorCode::UnknownJob)
    );
    let job = client.submit(&good, true).unwrap();
    let (_, done) = client.wait_done(job).unwrap();
    assert_eq!(done.state, JobState::Completed);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// A subscriber that cannot drain its stream is evicted once its
/// bounded write queue fills — memory stays bounded and the job (and
/// healthy subscribers) are unaffected. The writer thread is slowed
/// with a seeded `stall` chaos plan so the queue fills
/// deterministically.
#[test]
fn slow_subscribers_are_evicted_not_buffered_unboundedly() {
    let _guard = serial();
    let mut plan = FaultPlan::new(3);
    plan.rules
        .push(FaultRule::rate(FaultKind::Stall, 1.0).delay_ms(40));
    yoso::chaos::install(&plan);

    let server = Server::start(ServerConfig {
        max_subscriber_queue: 3,
        ..ServerConfig::default()
    })
    .unwrap();

    // Run the job to completion first (its ~hundred trace lines are
    // now all in the replay log), then subscribe from a raw socket
    // that never reads. Replay floods the 3-slot queue while the
    // chaos-stalled writer drains one frame per 40ms: eviction is
    // deterministic, not a race on socket buffers.
    let mut ctl = Client::connect(server.addr()).unwrap();
    let spec = spec("flood", 40, 13);
    let job = ctl.submit(&spec, false).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while ctl.status(job).unwrap().state != JobState::Completed {
        assert!(std::time::Instant::now() < deadline, "job never completed");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    use std::io::Write;
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    writeln!(
        raw,
        "{}",
        Request::Subscribe {
            job,
            from_seq: None
        }
        .to_json()
    )
    .unwrap();

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let stats = ctl.stats().unwrap();
        if stats.slow_client_evictions > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stalled subscriber was never evicted"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    yoso::chaos::disarm();

    // The job itself (and the control connection, whose queue never
    // grew past one frame) is untouched by the eviction.
    let status = ctl.status(job).unwrap();
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(status.iterations_done, 40);
    server.shutdown();
}

/// Silent connections get heartbeat probes and are closed after the
/// configured number of unanswered pings; a real [`Client`] answers
/// pings transparently and survives the same idle window.
#[test]
fn heartbeats_probe_then_close_silent_connections() {
    let _guard = serial();
    let server = Server::start(ServerConfig {
        read_timeout: std::time::Duration::from_millis(60),
        heartbeat_misses: 2,
        ..ServerConfig::default()
    })
    .unwrap();

    // A raw socket that never writes: it must see ping frames, then a
    // clean close once the miss budget is spent.
    {
        use std::io::{BufRead, BufReader};
        let raw = std::net::TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut pings = 0;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break, // server closed us
                Ok(_) => {
                    if matches!(Reply::parse(line.trim()), Ok(Reply::Ping)) {
                        pings += 1;
                    }
                }
            }
        }
        assert!(pings >= 1, "silent connection never got a heartbeat probe");
    }

    // A real client blocked in `wait_done` across many heartbeat
    // windows answers the pings under the hood (the 3-miss budget is
    // ~180ms; the job runs far longer) and the connection survives.
    let mut client = Client::connect(server.addr()).unwrap();
    let started = std::time::Instant::now();
    let job = client.submit(&spec("alive", 2_000, 2), true).unwrap();
    let (_, done) = client.wait_done(job).unwrap();
    assert_eq!(done.state, JobState::Completed);
    assert!(
        started.elapsed() > std::time::Duration::from_millis(200),
        "job too fast to span a heartbeat miss window"
    );
    assert_eq!(client.status(job).unwrap().state, JobState::Completed);

    let mut poller = Client::connect(server.addr()).unwrap();
    assert!(
        poller.stats().unwrap().heartbeats_missed >= 1,
        "silent connection close was not counted"
    );
    server.shutdown();
}

/// A `ResilientClient` rides out a mid-stream network chaos plan —
/// connection drops, partial writes, garbage frames — and still
/// collects the byte-identical stream, with zero lost or duplicated
/// iterations.
#[test]
fn resilient_client_survives_network_chaos_byte_identically() {
    let _guard = serial();
    let spec = spec("healer", 30, 4242);
    let baseline = in_process_lines(&spec);

    let mut plan = FaultPlan::new(2024);
    plan.rules.push(FaultRule::rate(FaultKind::ConnDrop, 0.04));
    plan.rules
        .push(FaultRule::rate(FaultKind::PartialWrite, 0.04));
    plan.rules
        .push(FaultRule::rate(FaultKind::GarbageFrame, 0.08));
    yoso::chaos::install(&plan);

    let server = Server::start(ServerConfig::default()).unwrap();
    let mut rc = ResilientClient::new(
        server.addr().to_string(),
        RetryPolicy {
            max_retries: 30,
            base_delay: std::time::Duration::from_millis(5),
            max_delay: std::time::Duration::from_millis(100),
            seed: 99,
        },
    );
    let job = rc.submit(&spec).unwrap();
    let (lines, done) = rc.wait_done(job).unwrap();
    yoso::chaos::disarm();

    assert_eq!(done.state, JobState::Completed);
    assert_eq!(
        search_iter_lines(&lines),
        baseline,
        "self-healed stream diverged (lost or duplicated events)"
    );
    server.shutdown();
}
