//! Server lifecycle integration tests: the co-design-as-a-service
//! daemon end to end over real TCP.
//!
//! The central contract is determinism: a job served over the wire
//! must stream the *byte-identical* `search_iter` JSONL that the same
//! seed produces in-process, including across a
//! suspend → server-restart → resume cycle, and including when a
//! chaos plan is faulting a *different* tenant on the same server.

use std::sync::atomic::{AtomicU64, Ordering};

use yoso::prelude::*;
use yoso_server::proto::Request;

fn tiny_reward() -> RewardConfig {
    let sk = yoso::arch::NetworkSkeleton::tiny();
    RewardConfig::balanced(calibrate_constraints(&sk, 50, 0, 50.0))
}

fn spec(tenant: &str, iterations: usize, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(tenant, tiny_reward());
    spec.config = yoso::core::SearchConfig {
        iterations,
        rollouts_per_update: 3,
        seed,
        population: 10,
        tournament: 3,
    };
    spec
}

/// The same search run in-process, returning its `search_iter` lines.
/// Checkpoint cadence never changes the trace, so it is dropped here
/// rather than wiring up a scratch directory.
fn in_process_lines(spec: &JobSpec) -> Vec<String> {
    let mut spec = spec.clone();
    spec.checkpoint_every = None;
    let evaluator = SurrogateEvaluator::new(yoso::arch::NetworkSkeleton::tiny());
    let trace = Trace::memory();
    spec.apply(SearchSession::builder())
        .evaluator(&evaluator)
        .trace(trace.clone())
        .run()
        .expect("in-process run");
    search_iter_lines(&trace.lines())
}

fn search_iter_lines(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .filter(|l| l.starts_with("{\"event\":\"search_iter\""))
        .cloned()
        .collect()
}

/// Fresh checkpoint root per test so parallel tests never collide.
fn temp_root(tag: &str) -> std::path::PathBuf {
    static SALT: AtomicU64 = AtomicU64::new(0);
    let n = SALT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("yoso_server_{tag}_{}_{n}", std::process::id()))
}

#[test]
fn served_stream_is_byte_identical_to_in_process_run() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let spec = spec("equiv", 9, 42);
    let job = client.submit(&spec, true).unwrap();
    let (lines, done) = client.wait_done(job).unwrap();
    assert_eq!(done.state, JobState::Completed);
    assert_eq!(done.iterations, 9);
    assert!(done.best_reward.is_some());

    let served = search_iter_lines(&lines);
    assert_eq!(served.len(), 9);
    assert_eq!(served, in_process_lines(&spec), "served stream diverged");

    // The replay path serves the same bytes again after completion.
    let mut late = Client::connect(server.addr()).unwrap();
    let status = late.subscribe(job).unwrap();
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(status.iterations_done, 9);
    let (replayed, done2) = late.wait_done(job).unwrap();
    assert_eq!(search_iter_lines(&replayed), served);
    assert_eq!(done2.state, JobState::Completed);

    server.shutdown();
}

#[test]
fn suspend_resume_across_server_restart_is_bit_identical() {
    let root = temp_root("resume");
    let cfg = ServerConfig {
        checkpoint_root: Some(root.clone()),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let spec = spec("suspender", 120, 7);
    let mut spec = spec;
    spec.checkpoint_every = Some(6);
    let job = client.submit(&spec, true).unwrap();

    // Let at least one iteration stream, then ask for suspension; the
    // session stops at its next controller-update boundary and writes
    // a suspend checkpoint.
    let first = client.next_event().unwrap();
    assert!(matches!(first, Reply::Event { .. }));
    client.suspend(job).unwrap();
    let (pre_raw, done) = client.wait_done(job).unwrap();
    assert_eq!(done.state, JobState::Suspended);
    let mut pre = search_iter_lines(&pre_raw);
    // One event was consumed by hand above.
    if let Reply::Event { line, .. } = first {
        if line.starts_with("{\"event\":\"search_iter\"") {
            pre.insert(0, line);
        }
    }
    assert!(
        !pre.is_empty() && pre.len() < 120,
        "suspend landed mid-run ({} iterations)",
        pre.len()
    );
    let status = client.status(job).unwrap();
    assert_eq!(status.state, JobState::Suspended);
    assert!(status.checkpoint.is_some(), "suspend wrote a checkpoint");
    drop(client);
    server.shutdown();

    // A brand-new server process state: resume purely from disk.
    let server2 = Server::start(ServerConfig {
        checkpoint_root: Some(root.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client2 = Client::connect(server2.addr()).unwrap();
    let status = client2.resume(job, true).unwrap();
    assert_eq!(status.job, job);
    assert_eq!(status.tenant, "suspender");
    let (post_raw, done2) = client2.wait_done(job).unwrap();
    assert_eq!(done2.state, JobState::Completed);
    assert_eq!(done2.iterations, 120);
    let post = search_iter_lines(&post_raw);

    let mut stitched = pre;
    stitched.extend(post);
    assert_eq!(
        stitched,
        in_process_lines(&spec),
        "suspend/restart/resume diverged from the uninterrupted run"
    );
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn served_pareto_front_matches_the_in_process_archive() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let spec = spec("multi", 12, 21);
    let job = client.submit(&spec, true).unwrap();
    let (_, done) = client.wait_done(job).unwrap();
    assert_eq!(done.state, JobState::Completed);

    // Same seed in-process: the served frame must carry exactly this
    // run's non-dominated archive, value-identical after the codec.
    let evaluator = SurrogateEvaluator::new(yoso::arch::NetworkSkeleton::tiny());
    let outcome = spec
        .apply(SearchSession::builder())
        .evaluator(&evaluator)
        .run()
        .expect("in-process run");
    let expected = yoso_server::pareto_front_of(job, &outcome);
    assert!(!expected.entries.is_empty());

    let served = client
        .pareto_front(job)
        .expect("pareto_front streamed before job_done");
    assert_eq!(*served, expected);

    // The replay path hands a late subscriber the identical frame.
    let mut late = Client::connect(server.addr()).unwrap();
    late.subscribe(job).unwrap();
    let (_, done2) = late.wait_done(job).unwrap();
    assert_eq!(done2.state, JobState::Completed);
    assert_eq!(late.pareto_front(job), Some(&expected));

    server.shutdown();
}

#[test]
fn rejection_paths_return_typed_error_codes() {
    let server = Server::start(ServerConfig {
        max_concurrent_jobs: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Unknown job.
    let err = client.status(9_999).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::UnknownJob));

    // Malformed frame and version mismatch, straight over the socket.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        let mut reply = String::new();

        writeln!(raw, "this is not a frame").unwrap();
        reader.read_line(&mut reply).unwrap();
        match Reply::parse(reply.trim()).unwrap() {
            Reply::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedFrame),
            other => panic!("expected error frame, got {other:?}"),
        }

        reply.clear();
        writeln!(raw, "{}", Event::new("stats").with_u64("v", 99).to_json()).unwrap();
        reader.read_line(&mut reply).unwrap();
        match Reply::parse(reply.trim()).unwrap() {
            Reply::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
            other => panic!("expected error frame, got {other:?}"),
        }
    }

    // Saturate the single runner with a long job, then fill the
    // one-slot queue; the next submit must bounce with AdmissionFull.
    let blocker = client.submit(&spec("hog", 4_000, 1), false).unwrap();
    for _ in 0..1_000 {
        if client.status(blocker).unwrap().state == JobState::Running {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(client.status(blocker).unwrap().state, JobState::Running);
    let queued = client.submit(&spec("hog", 10, 2), false).unwrap();
    let err = client.submit(&spec("hog", 10, 3), false).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::AdmissionFull));

    // Resuming a job that is not suspended is a typed state error.
    let err = client.resume(blocker, false).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::InvalidState));
    let err = client.resume(queued, false).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::InvalidState));

    // After a shutdown request, submits are refused.
    client.request(&Request::Shutdown).unwrap();
    let err = client.submit(&spec("hog", 10, 4), false).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::ShuttingDown));

    server.shutdown();
}

#[test]
fn scoped_chaos_faults_one_tenant_and_spares_others() {
    // Baseline before arming chaos: what the clean tenant's stream
    // must keep looking like.
    let clean_spec = spec("bystander", 9, 99);
    let baseline = in_process_lines(&clean_spec);

    // Every reward for the victim tenant's scope goes NaN; nobody
    // else matches the scope, so no other thread can fault.
    let mut plan = FaultPlan::new(11);
    plan.rules
        .push(FaultRule::rate(FaultKind::NanReward, 1.0).scope(yoso::chaos::scope_for("victim")));
    yoso::chaos::install(&plan);

    let server = Server::start(ServerConfig {
        tenant_fault_budget: Some(1),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // The victim's job degrades gracefully until its per-job fault
    // budget trips, then the job fails with the typed core error.
    let mut victim = spec("victim", 30, 5);
    victim.fault_budget = Some(2);
    let job = client.submit(&victim, true).unwrap();
    let (_, done) = client.wait_done(job).unwrap();
    assert_eq!(done.state, JobState::Failed);
    let msg = done.error.expect("failed job carries its error");
    assert!(
        msg.contains("fault budget exhausted"),
        "unexpected failure: {msg}"
    );
    let status = client.status(job).unwrap();
    assert_eq!(status.state, JobState::Failed);

    // The tenant's ledger is now over the server-side budget: further
    // submissions from the same tenant bounce with a typed code.
    let err = client.submit(&victim, false).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::FaultBudgetExhausted));

    // A clean tenant on the same faulted server is untouched:
    // byte-identical to the chaos-free in-process baseline.
    let clean_job = client.submit(&clean_spec, true).unwrap();
    let (lines, clean_done) = client.wait_done(clean_job).unwrap();
    assert_eq!(clean_done.state, JobState::Completed);
    assert_eq!(search_iter_lines(&lines), baseline);

    server.shutdown();
    yoso::chaos::disarm();
}
