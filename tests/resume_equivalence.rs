//! Crash-recovery guarantee, end to end through the facade: a search
//! killed at iteration 15 of 30 and resumed from its on-disk checkpoint
//! replays a bit-identical `search_iter` trace (iterations >= 15) and
//! reaches an outcome equal to the uninterrupted run — for all three
//! strategies, at 1 and 4 worker threads.
//!
//! The fault-tolerance extensions ride on the same contract: the drill
//! still holds with *transient* chaos faults injected (worker panics are
//! retried away), and a run killed by an exhausted fault budget resumes
//! from its emergency checkpoint and — once the fault is fixed — finishes
//! with a tail bit-identical to a run that never faulted past that point.
//!
//! Every test takes [`yoso::chaos::test_lock`]: the chaos injector is
//! process-global, so even the chaos-free drill must not overlap with an
//! armed plan from a sibling test thread.

use std::path::PathBuf;
use yoso::chaos::FaultKind;
use yoso::core::checkpoint::checkpoint_file_name;
use yoso::prelude::*;

const ITERATIONS: usize = 30;
const KILL_AT: usize = 15;

fn setup() -> (SurrogateEvaluator, RewardConfig) {
    let sk = yoso::arch::NetworkSkeleton::tiny();
    let ev = SurrogateEvaluator::new(sk.clone());
    let cons = calibrate_constraints(&sk, 50, 0, 50.0);
    (ev, RewardConfig::balanced(cons))
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "yoso-resume-equivalence-{tag}-{}",
        std::process::id()
    ))
}

fn search_iter_lines(trace: &Trace) -> Vec<String> {
    trace
        .lines()
        .into_iter()
        .filter(|l| l.contains("\"search_iter\""))
        .collect()
}

#[test]
fn kill_at_15_resume_is_bit_identical_across_strategies_and_threads() {
    let _g = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    let (ev, rc) = setup();
    let cfg = SearchConfig::builder()
        .iterations(ITERATIONS)
        .rollouts_per_update(5)
        .seed(7)
        .population(8)
        .tournament(3)
        .build();
    for threads in [1usize, 4] {
        yoso::pool::set_num_threads(threads);
        for (strategy, tag) in [
            (Strategy::Rl, "rl"),
            (Strategy::Evolution, "evo"),
            (Strategy::Random, "rand"),
        ] {
            let dir = temp_dir(&format!("{tag}-t{threads}"));
            let full_trace = Trace::memory();
            let full = SearchSession::builder()
                .evaluator(&ev)
                .reward(rc)
                .config(cfg.clone())
                .strategy(strategy)
                .checkpoint_every(KILL_AT)
                .checkpoint_dir(&dir)
                .trace(full_trace.clone())
                .run()
                .unwrap();

            // Simulated SIGKILL at iteration 15: every in-memory object is
            // dropped; only the snapshot file survives.
            let ckpt = dir.join(checkpoint_file_name(KILL_AT));
            assert!(ckpt.exists(), "{strategy}: no checkpoint at {KILL_AT}");
            let resumed_trace = Trace::memory();
            let resumed = SearchSession::resume_from(&ckpt)
                .unwrap()
                .evaluator(&ev)
                .trace(resumed_trace.clone())
                .run()
                .unwrap();

            // Outcome equality covers history, rewards and the final best.
            assert_eq!(resumed, full, "{strategy} t{threads}: outcome diverged");
            // The replayed JSONL stream must match the uninterrupted tail
            // byte for byte.
            let full_lines = search_iter_lines(&full_trace);
            let resumed_lines = search_iter_lines(&resumed_trace);
            assert_eq!(full_lines.len(), ITERATIONS);
            assert_eq!(
                resumed_lines.len(),
                ITERATIONS - KILL_AT,
                "{strategy} t{threads}: resumed run re-emitted restored iterations"
            );
            assert_eq!(
                &full_lines[KILL_AT..],
                &resumed_lines[..],
                "{strategy} t{threads}: search_iter tail diverged"
            );

            // `latest_checkpoint` finds the final snapshot; resuming from a
            // finished run replays nothing and returns the same outcome.
            let latest = latest_checkpoint(&dir).unwrap().expect("final snapshot");
            assert_eq!(latest, dir.join(checkpoint_file_name(ITERATIONS)));
            let replayed = SearchSession::resume_from(&latest)
                .unwrap()
                .evaluator(&ev)
                .run()
                .unwrap();
            assert_eq!(replayed, full, "{strategy} t{threads}: finished-run resume");

            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
    yoso::pool::set_num_threads(0);
}

/// The crash-recovery drill holds under *transient* chaos: with worker
/// panics (retried away by the supervised pool) and slow evaluations
/// injected, the full run, the trace, and the kill-at-15 resume are all
/// bit-identical to an entirely uninjected run.
#[test]
fn transient_faults_preserve_resume_bit_identity() {
    let _g = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    let sk = yoso::arch::NetworkSkeleton::tiny();
    let mut data_cfg = yoso::dataset::SynthCifarConfig::tiny();
    data_cfg.train_count = 64;
    let data = yoso::dataset::SynthCifar::generate(&data_cfg);
    let hyper_cfg = yoso::hypernet::HyperTrainConfig {
        epochs: 1,
        batch_size: 32,
        augment: false,
        ..Default::default()
    };
    // A fast evaluator, so session batches go through the supervised
    // parallel pool (the surrogate's batch path is serial and would give
    // worker panics nothing to hit).
    let ev = FastEvaluator::build(&sk, &data, &hyper_cfg, 60, 0).unwrap();
    let rc = RewardConfig::balanced(calibrate_constraints(&sk, 50, 0, 50.0));
    let cfg = SearchConfig::builder()
        .iterations(ITERATIONS)
        .rollouts_per_update(5)
        .seed(23)
        .build();
    yoso::pool::set_num_threads(4);

    // Reference: no chaos anywhere.
    let ref_trace = Trace::memory();
    let reference = SearchSession::builder()
        .evaluator(&ev)
        .reward(rc)
        .config(cfg.clone())
        .strategy(Strategy::Rl)
        .trace(ref_trace.clone())
        .run()
        .unwrap();
    let ref_lines = search_iter_lines(&ref_trace);

    // Chaos: panic item 1 of every parallel map (the retry recomputes
    // it), plus random 1 ms evaluation delays.
    yoso::chaos::install(
        &FaultPlan::new(31)
            .rule(FaultRule::at(FaultKind::WorkerPanic, &[1]))
            .rule(FaultRule::rate(FaultKind::SlowEval, 0.25).delay_ms(1)),
    );
    let dir = temp_dir("transient");
    let full_trace = Trace::memory();
    let full = SearchSession::builder()
        .evaluator(&ev)
        .reward(rc)
        .config(cfg.clone())
        .strategy(Strategy::Rl)
        .checkpoint_every(KILL_AT)
        .checkpoint_dir(&dir)
        .trace(full_trace.clone())
        .run()
        .unwrap();
    assert!(
        yoso::chaos::injected(FaultKind::WorkerPanic) > 0,
        "the panic rule must actually fire"
    );
    assert_eq!(full, reference, "transient faults changed the outcome");
    assert_eq!(
        search_iter_lines(&full_trace),
        ref_lines,
        "transient faults changed the search_iter stream"
    );

    // Kill at 15 and resume — still under the armed plan.
    let ckpt = dir.join(checkpoint_file_name(KILL_AT));
    assert!(ckpt.exists());
    let resumed_trace = Trace::memory();
    let resumed = SearchSession::resume_from(&ckpt)
        .unwrap()
        .evaluator(&ev)
        .trace(resumed_trace.clone())
        .run()
        .unwrap();
    yoso::chaos::disarm();
    yoso::pool::set_num_threads(0);

    assert_eq!(resumed, reference, "chaotic resume diverged");
    assert_eq!(
        &ref_lines[KILL_AT..],
        &search_iter_lines(&resumed_trace)[..],
        "chaotic resumed tail diverged from the uninjected run"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A run killed by an exhausted fault budget leaves an emergency
/// checkpoint behind; once the fault is fixed (chaos disarmed), resuming
/// from it finishes the search with a `search_iter` tail bit-identical
/// to a run that never faulted — the random strategy's trajectory does
/// not depend on rewards, so everything past the fault point must match.
#[test]
fn emergency_checkpoint_resume_matches_uninjected_tail() {
    let _g = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    let (ev, rc) = setup();
    let cfg = SearchConfig::builder()
        .iterations(ITERATIONS)
        .seed(41)
        .build();

    // Reference: the same search with no faults at all.
    let ref_trace = Trace::memory();
    let reference = SearchSession::builder()
        .evaluator(&ev)
        .reward(rc)
        .config(cfg.clone())
        .strategy(Strategy::Random)
        .trace(ref_trace.clone())
        .run()
        .unwrap();
    let ref_lines = search_iter_lines(&ref_trace);

    // Every reward poisoned: the budget of 3 trips at iteration 4.
    let dir = temp_dir("emergency");
    yoso::chaos::install(&FaultPlan::new(51).rule(FaultRule::rate(FaultKind::NanReward, 1.0)));
    let err = SearchSession::builder()
        .evaluator(&ev)
        .reward(rc)
        .config(cfg.clone())
        .strategy(Strategy::Random)
        .checkpoint_dir(&dir)
        .fault_budget(3)
        .run()
        .err();
    yoso::chaos::disarm();
    let Some(Error::FaultBudgetExhausted {
        checkpoint: Some(ckpt),
        ..
    }) = err
    else {
        panic!("expected FaultBudgetExhausted with a checkpoint, got {err:?}");
    };
    let fault_point = 4;
    assert_eq!(ckpt, dir.join(checkpoint_file_name(fault_point)));

    // Fault fixed: resume runs chaos-free to completion.
    let resumed_trace = Trace::memory();
    let resumed = SearchSession::resume_from(&ckpt)
        .unwrap()
        .evaluator(&ev)
        .trace(resumed_trace.clone())
        .run()
        .unwrap();

    assert_eq!(resumed.history.len(), ITERATIONS);
    assert_eq!(resumed.quarantine.len(), fault_point, "ledger restored");
    assert!(resumed.history[..fault_point]
        .iter()
        .all(|r| r.reward == QUARANTINE_REWARD));
    // Past the fault point the resumed run is indistinguishable from one
    // that never faulted: same points, same evals, same JSONL bytes.
    assert_eq!(
        &ref_lines[fault_point..],
        &search_iter_lines(&resumed_trace)[..],
        "resumed tail diverged from the uninjected run"
    );
    assert_eq!(
        &resumed.history[fault_point..],
        &reference.history[fault_point..],
        "resumed history tail diverged"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
