//! Crash-recovery guarantee, end to end through the facade: a search
//! killed at iteration 15 of 30 and resumed from its on-disk checkpoint
//! replays a bit-identical `search_iter` trace (iterations >= 15) and
//! reaches an outcome equal to the uninterrupted run — for all three
//! strategies, at 1 and 4 worker threads.

use std::path::PathBuf;
use yoso::core::checkpoint::checkpoint_file_name;
use yoso::prelude::*;

const ITERATIONS: usize = 30;
const KILL_AT: usize = 15;

fn setup() -> (SurrogateEvaluator, RewardConfig) {
    let sk = yoso::arch::NetworkSkeleton::tiny();
    let ev = SurrogateEvaluator::new(sk.clone());
    let cons = calibrate_constraints(&sk, 50, 0, 50.0);
    (ev, RewardConfig::balanced(cons))
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "yoso-resume-equivalence-{tag}-{}",
        std::process::id()
    ))
}

fn search_iter_lines(trace: &Trace) -> Vec<String> {
    trace
        .lines()
        .into_iter()
        .filter(|l| l.contains("\"search_iter\""))
        .collect()
}

#[test]
fn kill_at_15_resume_is_bit_identical_across_strategies_and_threads() {
    let (ev, rc) = setup();
    let cfg = SearchConfig::builder()
        .iterations(ITERATIONS)
        .rollouts_per_update(5)
        .seed(7)
        .population(8)
        .tournament(3)
        .build();
    for threads in [1usize, 4] {
        yoso::pool::set_num_threads(threads);
        for (strategy, tag) in [
            (Strategy::Rl, "rl"),
            (Strategy::Evolution, "evo"),
            (Strategy::Random, "rand"),
        ] {
            let dir = temp_dir(&format!("{tag}-t{threads}"));
            let full_trace = Trace::memory();
            let full = SearchSession::builder()
                .evaluator(&ev)
                .reward(rc)
                .config(cfg.clone())
                .strategy(strategy)
                .checkpoint_every(KILL_AT)
                .checkpoint_dir(&dir)
                .trace(full_trace.clone())
                .run()
                .unwrap();

            // Simulated SIGKILL at iteration 15: every in-memory object is
            // dropped; only the snapshot file survives.
            let ckpt = dir.join(checkpoint_file_name(KILL_AT));
            assert!(ckpt.exists(), "{strategy}: no checkpoint at {KILL_AT}");
            let resumed_trace = Trace::memory();
            let resumed = SearchSession::resume_from(&ckpt)
                .unwrap()
                .evaluator(&ev)
                .trace(resumed_trace.clone())
                .run()
                .unwrap();

            // Outcome equality covers history, rewards and the final best.
            assert_eq!(resumed, full, "{strategy} t{threads}: outcome diverged");
            // The replayed JSONL stream must match the uninterrupted tail
            // byte for byte.
            let full_lines = search_iter_lines(&full_trace);
            let resumed_lines = search_iter_lines(&resumed_trace);
            assert_eq!(full_lines.len(), ITERATIONS);
            assert_eq!(
                resumed_lines.len(),
                ITERATIONS - KILL_AT,
                "{strategy} t{threads}: resumed run re-emitted restored iterations"
            );
            assert_eq!(
                &full_lines[KILL_AT..],
                &resumed_lines[..],
                "{strategy} t{threads}: search_iter tail diverged"
            );

            // `latest_checkpoint` finds the final snapshot; resuming from a
            // finished run replays nothing and returns the same outcome.
            let latest = latest_checkpoint(&dir).unwrap().expect("final snapshot");
            assert_eq!(latest, dir.join(checkpoint_file_name(ITERATIONS)));
            let replayed = SearchSession::resume_from(&latest)
                .unwrap()
                .evaluator(&ev)
                .run()
                .unwrap();
            assert_eq!(replayed, full, "{strategy} t{threads}: finished-run resume");

            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
    yoso::pool::set_num_threads(0);
}
