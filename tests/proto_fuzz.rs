//! Fuzz-style property tests for the wire-protocol decoder: whatever
//! bytes arrive — truncated frames, bit-flipped valid frames, random
//! garbage, hostile declared lengths — `Request::parse` / `Reply::parse`
//! must return a typed `Malformed`-class error rather than panic, and
//! must never allocate proportionally to an attacker-declared size.

use proptest::prelude::*;
use yoso::prelude::*;
use yoso_server::proto::{self, ProtoError};

/// A corpus of valid frames of both directions, covering every frame
/// type the dialect defines.
fn valid_frames() -> Vec<String> {
    let spec = JobSpec::new("fuzz", RewardConfig::balanced(Constraints::paper()));
    let requests = [
        Request::Submit {
            spec: spec.clone(),
            stream: true,
        },
        Request::Status { job: 7 },
        Request::Suspend { job: 7 },
        Request::Resume {
            job: 7,
            stream: false,
        },
        Request::Subscribe {
            job: 7,
            from_seq: Some(42),
        },
        Request::Stats,
        Request::Pong,
        Request::Shutdown,
    ];
    let replies = [
        Reply::Submitted { job: 7 },
        Reply::Event {
            job: 7,
            seq: 3,
            line: "{\"event\":\"search_iter\",\"iteration\":3}".to_string(),
        },
        Reply::Done(JobDone {
            job: 7,
            state: JobState::Completed,
            iterations: 10,
            best_reward: Some(1.25),
            error: None,
        }),
        Reply::ParetoFront(ParetoFront {
            job: 7,
            entries: vec![ParetoEntry {
                iteration: 1,
                accuracy: 0.9,
                latency_ms: 3.5,
                energy_mj: 0.7,
                reward: 1.1,
                hw: "pe8x8".to_string(),
            }],
        }),
        Reply::Ping,
        Reply::ShuttingDown,
        Reply::Error {
            code: ErrorCode::MalformedFrame,
            message: "nope".to_string(),
        },
    ];
    requests
        .iter()
        .map(Request::to_json)
        .chain(replies.iter().map(Reply::to_json))
        .collect()
}

/// SplitMix64, driving the seed-derived byte mutations below (the
/// vendored proptest generates scalars; structure comes from the seed).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Byte mutations of valid frames never panic the decoders; they
    /// either round-trip to some valid frame or fail with a typed
    /// error.
    #[test]
    fn mutated_frames_decode_or_fail_typed(seed in any::<u64>()) {
        let corpus = valid_frames();
        let mut s = seed;
        let pick = (splitmix64(&mut s) % corpus.len() as u64) as usize;
        let mut bytes = corpus[pick].clone().into_bytes();
        let edits = 1 + (splitmix64(&mut s) % 7) as usize;
        for _ in 0..edits {
            let at = (splitmix64(&mut s) % bytes.len() as u64) as usize;
            bytes[at] = (splitmix64(&mut s) & 0xFF) as u8;
        }
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _: Result<Request, ProtoError> = Request::parse(&line);
        let _: Result<Reply, ProtoError> = Reply::parse(&line);
    }

    /// Pure garbage never panics either, and always fails typed.
    #[test]
    fn random_bytes_fail_typed(seed in any::<u64>(), len in 0usize..512) {
        let mut s = seed;
        let bytes: Vec<u8> = (0..len).map(|_| (splitmix64(&mut s) & 0xFF) as u8).collect();
        let line = String::from_utf8_lossy(&bytes).into_owned();
        if let Err(e) = Request::parse(&line) {
            prop_assert!(matches!(
                e.code,
                ErrorCode::MalformedFrame | ErrorCode::UnsupportedVersion | ErrorCode::InvalidSpec
            ));
        }
        if let Err(e) = Reply::parse(&line) {
            prop_assert!(matches!(
                e.code,
                ErrorCode::MalformedFrame | ErrorCode::UnsupportedVersion
            ));
        }
    }

    /// A hostile `pareto_front` frame declaring a huge entry count is
    /// rejected before any allocation sized by that count — bounded
    /// memory no matter what the peer declares.
    #[test]
    fn declared_pareto_counts_are_capped(
        count in proto::MAX_PARETO_ENTRIES + 1..u64::MAX / 2,
    ) {
        let frame = Event::new("pareto_front")
            .with_u64("v", PROTO_VERSION)
            .with_u64("job", 1)
            .with_u64("count", count)
            .to_json();
        let err = Reply::parse(&frame).unwrap_err();
        prop_assert_eq!(err.code, ErrorCode::MalformedFrame);
    }
}

/// Oversized lines are refused by length before the JSON layer sees
/// them, so a single frame can never make the decoder buffer more than
/// the cap.
#[test]
fn oversized_lines_are_rejected_by_length() {
    let huge = format!(
        "{{\"event\":\"stats\",\"v\":{PROTO_VERSION},\"pad\":\"{}\"}}",
        "x".repeat(proto::MAX_FRAME_LEN)
    );
    let err = Request::parse(&huge).unwrap_err();
    assert_eq!(err.code, ErrorCode::MalformedFrame);
    let err = Reply::parse(&huge).unwrap_err();
    assert_eq!(err.code, ErrorCode::MalformedFrame);
}
