//! Property-based invariants over the core data structures, spanning the
//! codec, compiler, simulator and reward.

use proptest::prelude::*;
use yoso::accel::Simulator;
use yoso::arch::{
    ActionSpace, DesignPoint, Genotype, HwConfig, LayerKind, NetworkSkeleton, SEQUENCE_LEN,
};
use yoso::core::reward::{Constraints, RewardConfig};

/// Strategy: an arbitrary in-vocabulary action sequence.
fn action_seq() -> impl Strategy<Value = Vec<usize>> {
    let space = ActionSpace::new();
    let vocab: Vec<usize> = space.vocab_sizes().to_vec();
    vocab
        .into_iter()
        .map(|v| (0..v).boxed())
        .collect::<Vec<_>>()
        .prop_map(|v| v)
}

/// Strategy: a random design point via its seed.
fn design_point() -> impl Strategy<Value = DesignPoint> {
    any::<u64>().prop_map(|seed| {
        use rand::{rngs::StdRng, SeedableRng};
        DesignPoint::random(&mut StdRng::seed_from_u64(seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every in-vocabulary sequence decodes to a valid design point and
    /// re-encodes to itself (the codec is a bijection on its domain).
    #[test]
    fn codec_bijection(seq in action_seq()) {
        let space = ActionSpace::new();
        prop_assert_eq!(seq.len(), SEQUENCE_LEN);
        let point = space.decode(&seq).unwrap();
        prop_assert!(point.is_valid());
        prop_assert_eq!(space.encode(&point), seq);
    }

    /// Compilation invariants: spatial chain consistency and stats
    /// consistency for arbitrary genotypes.
    #[test]
    fn compile_invariants(point in design_point()) {
        let plan = NetworkSkeleton::paper_default().compile(&point.genotype);
        let mut macs = 0u64;
        for l in &plan.layers {
            match l.kind {
                LayerKind::Conv { stride, .. }
                | LayerKind::DwConv { stride, .. }
                | LayerKind::Pool { stride, .. } => {
                    prop_assert_eq!(l.h_in / stride, l.h_out);
                }
                _ => {}
            }
            macs += l.macs();
        }
        prop_assert_eq!(macs, plan.stats.total_macs);
        prop_assert!(plan.stats.total_weights > 0);
    }

    /// Simulator sanity on arbitrary points: positive finite outputs,
    /// utilization in [0,1], breakdown sums to the reported energy.
    #[test]
    fn simulator_outputs_sane(point in design_point()) {
        let plan = NetworkSkeleton::tiny().compile(&point.genotype);
        let rep = Simulator::exact().simulate_plan(&plan, &point.hw);
        prop_assert!(rep.latency_ms.is_finite() && rep.latency_ms > 0.0);
        prop_assert!(rep.energy_mj.is_finite() && rep.energy_mj > 0.0);
        prop_assert!((0.0..=1.0).contains(&rep.utilization));
        let sum: f64 = rep.layers.iter().map(|l| l.energy.total_pj()).sum();
        prop_assert!((sum * 1e-9 - rep.energy_mj).abs() <= rep.energy_mj * 1e-9 + 1e-15);
    }

    /// Growing only the global buffer never increases DRAM traffic
    /// (capacity monotonicity of the tiling search).
    #[test]
    fn gbuf_monotonicity(point in design_point(), which in 0usize..5) {
        let plan = NetworkSkeleton::tiny().compile(&point.genotype);
        let sim = Simulator::exact();
        let gbufs = yoso::arch::GBUF_MENU_KB;
        let small_hw = HwConfig { gbuf_kb: gbufs[which], ..point.hw };
        let big_hw = HwConfig { gbuf_kb: gbufs[which + 1], ..point.hw };
        let small = sim.simulate_plan(&plan, &small_hw);
        let big = sim.simulate_plan(&plan, &big_hw);
        prop_assert!(
            big.dram_words <= small.dram_words + 1.0,
            "gbuf {} -> {} increased dram {} -> {}",
            small_hw.gbuf_kb, big_hw.gbuf_kb, small.dram_words, big.dram_words
        );
    }

    /// Reward monotonicity: strictly increasing in accuracy, weakly
    /// decreasing in latency and energy (for negative exponents).
    #[test]
    fn reward_monotonicity(
        acc in 0.05f64..0.95,
        lat in 0.01f64..10.0,
        eer in 0.01f64..10.0,
        d in 0.01f64..1.0,
    ) {
        let rc = RewardConfig::balanced(Constraints { t_lat_ms: 1.0, t_eer_mj: 1.0 });
        prop_assert!(rc.reward(acc + 0.01, lat, eer) > rc.reward(acc, lat, eer));
        prop_assert!(rc.reward(acc, lat + d, eer) <= rc.reward(acc, lat, eer));
        prop_assert!(rc.reward(acc, lat, eer + d) <= rc.reward(acc, lat, eer));
    }

    /// Genotype sampling is always valid and output arity in 1..=5.
    #[test]
    fn genotype_sampling_valid(seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let g = Genotype::random(&mut StdRng::seed_from_u64(seed));
        prop_assert!(g.is_valid());
        let arity = g.normal.output_arity();
        prop_assert!((1..=5).contains(&arity));
    }
}
