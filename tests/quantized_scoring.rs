//! Fidelity and plumbing of the int8 candidate-scoring path: the search
//! only needs quantized scoring to *rank* candidates the way f32 does,
//! so the headline contract is rank correlation, not absolute accuracy.
//! The remaining tests pin the `ScoringPrecision` plumbing through the
//! evaluator trait and a full `SearchSession` run.

use rand::rngs::StdRng;
use rand::SeedableRng;
use yoso::arch::{Genotype, NetworkSkeleton};
use yoso::core::evaluation::{calibrate_constraints, FastEvaluator, ScoringPrecision};
use yoso::core::reward::RewardConfig;
use yoso::core::search::SearchConfig;
use yoso::core::session::{SearchSession, Strategy};
use yoso::core::Evaluator;
use yoso::dataset::{SynthCifar, SynthCifarConfig};
use yoso::hypernet::{HyperNet, HyperTrainConfig};
use yoso::prelude::Trace;

/// Average ranks (1-based), ties sharing the mean of their positions.
fn average_ranks(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap());
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &ix in &idx[i..=j] {
            ranks[ix] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation with average-rank tie handling.
fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let (ra, rb) = (average_ranks(a), average_ranks(b));
    let n = ra.len() as f64;
    let (ma, mb) = (ra.iter().sum::<f64>() / n, rb.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

/// Int8 scoring ranks candidates like f32 scoring: Spearman rho >= 0.95
/// across 64 random genotypes on a briefly trained tiny HyperNet.
#[test]
fn int8_scoring_preserves_f32_ranking() {
    let sk = NetworkSkeleton::tiny();
    let mut cfg = SynthCifarConfig::tiny();
    cfg.val_count = 256; // finer accuracy resolution for rank comparison
    let data = SynthCifar::generate(&cfg);
    let mut hyper = HyperNet::new(sk, 0);
    let tcfg = HyperTrainConfig {
        epochs: 1,
        batch_size: 32,
        augment: false,
        ..Default::default()
    };
    hyper.train(&data, &tcfg);

    let mut rng = StdRng::seed_from_u64(42);
    let genos: Vec<Genotype> = (0..64).map(|_| Genotype::random(&mut rng)).collect();
    let f32_scores: Vec<f64> = genos
        .iter()
        .map(|g| hyper.evaluate_genotype(g, &data.val, 128))
        .collect();
    let int8_scores: Vec<f64> = genos
        .iter()
        .map(|g| hyper.evaluate_genotype_int8(g, &data.val, 128))
        .collect();

    let rho = spearman(&f32_scores, &int8_scores);
    assert!(
        rho >= 0.95,
        "int8 scoring must preserve the f32 ranking: spearman rho {rho:.3} < 0.95"
    );
    // Absolute agreement should also be close: mean |diff| within a few
    // validation examples' worth of accuracy.
    let mean_abs: f64 = f32_scores
        .iter()
        .zip(&int8_scores)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / genos.len() as f64;
    assert!(
        mean_abs <= 0.05,
        "mean |f32 - int8| accuracy gap {mean_abs:.4} too large"
    );
}

/// `ScoringPrecision` plumbs through the `Evaluator` trait: switching
/// precision changes the evaluator's name (so checkpoints can't silently
/// resume across precisions), both precisions produce finite in-range
/// accuracies for the same design point, and the setting round-trips.
#[test]
fn evaluator_precision_plumbing() {
    let sk = NetworkSkeleton::tiny();
    let data = SynthCifar::generate(&SynthCifarConfig::tiny());
    let hyper_cfg = HyperTrainConfig {
        epochs: 1,
        batch_size: 32,
        augment: false,
        ..Default::default()
    };
    let ev = FastEvaluator::build(&sk, &data, &hyper_cfg, 120, 0).unwrap();

    assert_eq!(ev.scoring_precision(), ScoringPrecision::F32);
    let mut rng = StdRng::seed_from_u64(3);
    let point = yoso::arch::DesignPoint::random(&mut rng);

    let f32_eval = ev.evaluate(&point).unwrap();
    let f32_name = ev.name();

    ev.set_scoring_precision(ScoringPrecision::Int8);
    assert_eq!(ev.scoring_precision(), ScoringPrecision::Int8);
    let int8_eval = ev.evaluate(&point).unwrap();
    let int8_name = ev.name();

    assert_ne!(
        f32_name, int8_name,
        "precision must be part of the evaluator identity"
    );
    for (tag, e) in [("f32", &f32_eval), ("int8", &int8_eval)] {
        assert!(
            (0.0..=1.0).contains(&e.accuracy),
            "{tag} accuracy {} out of range",
            e.accuracy
        );
    }
    // Hardware-side metrics don't depend on scoring precision.
    assert_eq!(f32_eval.latency_ms, int8_eval.latency_ms);
    assert_eq!(f32_eval.energy_mj, int8_eval.energy_mj);

    ev.set_scoring_precision(ScoringPrecision::F32);
    assert_eq!(ev.scoring_precision(), ScoringPrecision::F32);
}

/// A full search session runs end to end with int8 scoring opted in via
/// the builder, and records the precision in its `search_start` event.
#[test]
fn session_runs_with_int8_scoring() {
    let sk = NetworkSkeleton::tiny();
    let data = SynthCifar::generate(&SynthCifarConfig::tiny());
    let hyper_cfg = HyperTrainConfig {
        epochs: 1,
        batch_size: 32,
        augment: false,
        ..Default::default()
    };
    let ev = FastEvaluator::build(&sk, &data, &hyper_cfg, 120, 0).unwrap();
    let cons = calibrate_constraints(&sk, 50, 0, 50.0);
    let cfg = SearchConfig::builder()
        .iterations(4)
        .rollouts_per_update(2)
        .seed(11)
        .build();
    let trace = Trace::memory();
    let outcome = SearchSession::builder()
        .evaluator(&ev)
        .reward(RewardConfig::balanced(cons))
        .config(cfg)
        .strategy(Strategy::Random)
        .scoring_precision(ScoringPrecision::Int8)
        .trace(trace.clone())
        .run()
        .unwrap();
    assert!(
        outcome.best().reward.is_finite(),
        "int8 session found no finite-reward candidate"
    );
    let start_line = trace
        .lines()
        .into_iter()
        .find(|l| l.contains("\"search_start\""))
        .expect("missing search_start event");
    assert!(
        start_line.contains("\"scoring\":\"int8\"") || start_line.contains("\"scoring\": \"int8\""),
        "search_start must record the scoring precision: {start_line}"
    );
}
