//! Cross-crate integration tests: every subsystem wired together the way
//! the paper's flow uses them.

use rand::rngs::StdRng;
use rand::SeedableRng;
use yoso::accel::Simulator;
use yoso::arch::{ActionSpace, DesignPoint, NetworkSkeleton};
use yoso::core::evaluation::{calibrate_constraints, FastEvaluator, SurrogateEvaluator};
use yoso::core::reward::RewardConfig;
use yoso::core::search::SearchConfig;
use yoso::core::session::{SearchSession, Strategy};
use yoso::core::{
    best_hw_for, finalize, reference_models, AccurateEvaluator, Evaluator, OptimizationTarget,
};
use yoso::dataset::{SynthCifar, SynthCifarConfig};
use yoso::hypernet::HyperTrainConfig;
use yoso::nn::TrainConfig;
use yoso::predictor::perf::{collect_samples, PerfPredictor};

/// Action sequence -> design point -> plan -> simulation -> features ->
/// prediction: the whole data path used inside the search loop.
#[test]
fn codec_to_prediction_data_path() {
    let skeleton = NetworkSkeleton::tiny();
    let sim = Simulator::exact();
    let train = collect_samples(&skeleton, &sim, 150, 0);
    let predictor = PerfPredictor::train(&skeleton, &train).unwrap();

    let space = ActionSpace::new();
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..10 {
        let point = DesignPoint::random(&mut rng);
        let actions = space.encode(&point);
        let decoded = space.decode(&actions).unwrap();
        assert_eq!(decoded, point);
        let plan = skeleton.compile(&decoded.genotype);
        let truth = sim.simulate_plan(&plan, &decoded.hw);
        let (pl, pe) = predictor.predict(&decoded);
        // The GP should land within a factor of two on unseen points.
        assert!(pl > truth.latency_ms / 2.0 && pl < truth.latency_ms * 2.0);
        assert!(pe > truth.energy_mj / 2.0 && pe < truth.energy_mj * 2.0);
    }
}

/// The paper's three steps end-to-end at miniature scale.
#[test]
fn full_pipeline_three_steps() {
    let skeleton = NetworkSkeleton::tiny();
    let mut data_cfg = SynthCifarConfig::tiny();
    data_cfg.train_count = 128;
    let data = SynthCifar::generate(&data_cfg);
    // Step 1: fast evaluator construction.
    let hyper_cfg = HyperTrainConfig {
        epochs: 1,
        batch_size: 32,
        augment: false,
        ..Default::default()
    };
    let fast = FastEvaluator::build(&skeleton, &data, &hyper_cfg, 120, 0).unwrap();
    // Step 2: RL search.
    let constraints = calibrate_constraints(&skeleton, 60, 0, 50.0);
    let rc = RewardConfig::balanced(constraints);
    let outcome = SearchSession::builder()
        .evaluator(&fast)
        .reward(rc)
        .strategy(Strategy::Rl)
        .config(SearchConfig {
            iterations: 40,
            rollouts_per_update: 8,
            seed: 0,
            ..SearchConfig::default()
        })
        .run()
        .unwrap();
    assert_eq!(outcome.history.len(), 40);
    // Step 3: accurate top-N rerank.
    let mut train_cfg = TrainConfig::fast_test();
    train_cfg.epochs = 1;
    let accurate = AccurateEvaluator::new(skeleton, data, train_cfg);
    let finalists = finalize(&outcome, 2, &accurate, &rc).unwrap();
    assert_eq!(finalists.len(), 2);
    assert!(finalists[0].accurate_reward >= finalists[1].accurate_reward);
    assert!(finalists[0].accurate_eval.accuracy > 0.0);
}

/// The joint search can find designs at least as good as the two-stage
/// flow under the same budget and evaluator (smoke-level check of the
/// paper's central claim).
#[test]
fn single_stage_not_worse_than_two_stage_smoke() {
    let skeleton = NetworkSkeleton::paper_default();
    let evaluator = SurrogateEvaluator::new(skeleton.clone());
    let constraints = calibrate_constraints(&skeleton, 150, 0, 40.0);
    let rc = RewardConfig::balanced(constraints);
    // Two-stage: reference genotypes + exhaustive hardware enumeration.
    let sim = Simulator::fast();
    let mut best_two_stage = f64::NEG_INFINITY;
    for m in reference_models() {
        let best = best_hw_for(
            &m.genotype,
            &skeleton,
            &sim,
            &constraints,
            OptimizationTarget::Energy,
        );
        let eval = evaluator
            .evaluate(&DesignPoint {
                genotype: m.genotype,
                hw: best.hw,
            })
            .unwrap();
        best_two_stage =
            best_two_stage.max(rc.reward(eval.accuracy, eval.latency_ms, eval.energy_mj));
    }
    // Single stage under a modest budget.
    let outcome = SearchSession::builder()
        .evaluator(&evaluator)
        .reward(rc)
        .strategy(Strategy::Rl)
        .config(SearchConfig {
            iterations: 800,
            rollouts_per_update: 10,
            seed: 0,
            ..SearchConfig::default()
        })
        .run()
        .unwrap();
    let best_single = outcome.best().reward;
    assert!(
        best_single > best_two_stage * 0.95,
        "single-stage {best_single:.4} much worse than two-stage {best_two_stage:.4}"
    );
}

/// Searches with different seeds explore different candidates but the
/// same seed reproduces exactly (cross-crate determinism).
#[test]
fn cross_crate_determinism() {
    let skeleton = NetworkSkeleton::tiny();
    let ev = SurrogateEvaluator::new(skeleton.clone());
    let constraints = calibrate_constraints(&skeleton, 50, 0, 50.0);
    let rc = RewardConfig::latency_focused(constraints);
    let cfg = SearchConfig {
        iterations: 30,
        rollouts_per_update: 5,
        seed: 11,
        ..SearchConfig::default()
    };
    let rl = |cfg: &SearchConfig| {
        SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .strategy(Strategy::Rl)
            .config(cfg.clone())
            .run()
            .unwrap()
    };
    let a = rl(&cfg);
    let b = rl(&cfg);
    assert_eq!(a, b);
    let mut cfg2 = cfg.clone();
    cfg2.seed = 12;
    let c = rl(&cfg2);
    assert_ne!(a.history[0].point, c.history[0].point);
}

/// Random search must cover hardware configurations broadly (sanity check
/// that the codec exposes the whole hardware space to the search).
#[test]
fn search_covers_hardware_space() {
    let skeleton = NetworkSkeleton::tiny();
    let ev = SurrogateEvaluator::new(skeleton.clone());
    let constraints = calibrate_constraints(&skeleton, 50, 0, 50.0);
    let rc = RewardConfig::balanced(constraints);
    let out = SearchSession::builder()
        .evaluator(&ev)
        .reward(rc)
        .strategy(Strategy::Random)
        .config(SearchConfig {
            iterations: 400,
            rollouts_per_update: 1,
            seed: 0,
            ..SearchConfig::default()
        })
        .run()
        .unwrap();
    let dataflows: std::collections::HashSet<_> =
        out.history.iter().map(|r| r.point.hw.dataflow).collect();
    assert_eq!(dataflows.len(), 4, "all four dataflows sampled");
    let pes: std::collections::HashSet<_> = out.history.iter().map(|r| r.point.hw.pe).collect();
    assert!(pes.len() >= 8, "PE menu explored: {}", pes.len());
}
