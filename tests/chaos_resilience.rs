//! Fault-tolerance guarantees, end to end through the facade, under the
//! deterministic chaos injector (`yoso::chaos`):
//!
//! * chaos disabled (or armed with an empty plan) changes **nothing** —
//!   the `search_iter` stream and the outcome are bit-identical to a
//!   plain run, at 1 and 4 worker threads;
//! * injected worker panics are retried away and converge to the
//!   fault-free values;
//! * injected NaN rewards / simulator NaNs are quarantined: the history
//!   stays finite, the ledger records the offenders, the JSONL stream
//!   flags exactly those iterations;
//! * a GP fit failure surfaces as a typed [`Error::Fit`], never a panic;
//! * poisoned GP predictions degrade per-query to the memoized simulator;
//! * an exhausted fault budget aborts with a typed error and an
//!   emergency checkpoint that a chaos-free session can resume from;
//! * arbitrary fault plans (rates < 100%) always terminate in a valid
//!   outcome or a typed error — never a panic, never a non-finite best.
//!
//! Every test serializes on [`yoso::chaos::test_lock`]: the injector is
//! process-global state.

use proptest::prelude::*;
use std::path::PathBuf;
use yoso::chaos::FaultKind;
use yoso::core::checkpoint::checkpoint_file_name;
use yoso::core::session::Strategy as Search;
use yoso::prelude::*;

fn setup() -> (SurrogateEvaluator, RewardConfig) {
    let sk = yoso::arch::NetworkSkeleton::tiny();
    let ev = SurrogateEvaluator::new(sk.clone());
    let cons = calibrate_constraints(&sk, 50, 0, 50.0);
    (ev, RewardConfig::balanced(cons))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("yoso-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn search_iter_lines(trace: &Trace) -> Vec<String> {
    trace
        .lines()
        .into_iter()
        .filter(|l| l.contains("\"search_iter\""))
        .collect()
}

fn run_search(
    ev: &SurrogateEvaluator,
    rc: RewardConfig,
    strategy: Search,
    seed: u64,
) -> (Result<SearchOutcome, Error>, Vec<String>) {
    let trace = Trace::memory();
    let out = SearchSession::builder()
        .evaluator(ev)
        .reward(rc)
        .strategy(strategy)
        .config(
            SearchConfig::builder()
                .iterations(20)
                .rollouts_per_update(5)
                .seed(seed)
                .population(8)
                .tournament(3)
                .build(),
        )
        .trace(trace.clone())
        .run();
    let lines = search_iter_lines(&trace);
    (out, lines)
}

/// Acceptance gate 1: with faults disabled — and equally with chaos
/// armed on a plan that injects nothing — the trace and outcome are
/// bit-identical to a plain run, at 1 and 4 worker threads.
#[test]
fn disarmed_and_empty_plan_runs_are_bit_identical() {
    let _g = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    let (ev, rc) = setup();
    for strategy in [Search::Rl, Search::Evolution, Search::Random] {
        for threads in [1usize, 4] {
            yoso::pool::set_num_threads(threads);
            let (plain, plain_lines) = run_search(&ev, rc, strategy, 9);
            let plain = plain.unwrap();

            yoso::chaos::install(&FaultPlan::new(42)); // armed, zero rules
            let (armed, armed_lines) = run_search(&ev, rc, strategy, 9);
            let armed = armed.unwrap();
            yoso::chaos::disarm();

            assert_eq!(armed, plain, "{strategy} t{threads}: outcome diverged");
            assert_eq!(
                armed_lines, plain_lines,
                "{strategy} t{threads}: search_iter stream diverged"
            );
            assert!(armed.quarantine.is_empty());
        }
    }
    yoso::pool::set_num_threads(0);
}

/// Injected worker panics are transient: the supervised pool retries
/// them and the full stack (sampling, simulation, calibration) converges
/// to exactly the fault-free values.
#[test]
fn injected_worker_panics_converge_to_fault_free_results() {
    let _g = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    let sk = yoso::arch::NetworkSkeleton::tiny();
    yoso::pool::set_num_threads(4);
    let clean = calibrate_constraints(&sk, 40, 3, 50.0);

    // Index-targeted panics fire once per parallel map for items 0 and 5,
    // then the retry succeeds (no rate rule, so attempt 1 never faults).
    yoso::chaos::install(
        &FaultPlan::new(7)
            .rule(FaultRule::at(FaultKind::WorkerPanic, &[0, 5]))
            .rule(FaultRule::rate(FaultKind::SlowEval, 0.2).delay_ms(1)),
    );
    let chaotic = calibrate_constraints(&sk, 40, 3, 50.0);
    let injected = yoso::chaos::injected(FaultKind::WorkerPanic);
    yoso::chaos::disarm();
    yoso::pool::set_num_threads(0);

    assert!(injected > 0, "the plan must actually fire");
    assert_eq!(
        clean, chaotic,
        "retried items must converge to fault-free values"
    );
}

/// NaN rewards are quarantined, not propagated: the history stays
/// finite, the ledger records the offending candidates, and the JSONL
/// stream flags exactly those iterations.
#[test]
fn nan_rewards_are_quarantined() {
    let _g = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    let (ev, rc) = setup();
    yoso::chaos::install(&FaultPlan::new(1).rule(FaultRule::at(FaultKind::NanReward, &[3, 7, 12])));
    let (out, lines) = run_search(&ev, rc, Search::Random, 5);
    yoso::chaos::disarm();
    let out = out.unwrap();

    assert_eq!(out.history.len(), 20);
    assert_eq!(out.quarantine.len(), 3);
    assert_eq!(
        out.quarantine
            .iter()
            .map(|q| q.iteration)
            .collect::<Vec<_>>(),
        vec![3, 7, 12]
    );
    for q in &out.quarantine {
        assert_eq!(q.reason, NonFiniteMetric::Reward);
        assert!(q.actions.is_none(), "random candidates carry no rollout");
        assert_eq!(out.history[q.iteration].reward, QUARANTINE_REWARD);
        assert_eq!(out.history[q.iteration].point, q.point);
    }
    for rec in &out.history {
        assert!(rec.reward.is_finite(), "history must stay finite");
        assert!(rec.eval.latency_ms.is_finite() && rec.eval.energy_mj.is_finite());
    }
    assert!(
        out.best().reward > QUARANTINE_REWARD,
        "best is never a quarantined record"
    );
    for (i, line) in lines.iter().enumerate() {
        assert_eq!(
            line.contains("\"quarantined\""),
            [3, 7, 12].contains(&i),
            "iteration {i} mis-flagged: {line}"
        );
    }
}

/// RL rollout quarantine: the offending action sequences land in the
/// ledger, the REINFORCE batch excludes them, and the search completes.
#[test]
fn rl_quarantine_records_action_sequences_and_search_completes() {
    let _g = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    let (ev, rc) = setup();
    yoso::chaos::install(
        &FaultPlan::new(2).rule(FaultRule::rate(FaultKind::NanReward, 0.3).max_faults(6)),
    );
    let (out, _) = run_search(&ev, rc, Search::Rl, 11);
    yoso::chaos::disarm();
    let out = out.unwrap();

    assert_eq!(out.history.len(), 20);
    assert!(
        !out.quarantine.is_empty(),
        "rate 0.3 over 20 draws must fire"
    );
    for q in &out.quarantine {
        let actions = q.actions.as_ref().expect("RL entries carry the rollout");
        assert!(!actions.is_empty());
        // The recorded action sequence reproduces the quarantined point.
        let space = yoso::arch::ActionSpace::new();
        assert_eq!(space.decode(actions).unwrap(), q.point);
    }
    assert!(out.best().reward.is_finite());
    assert!(out.best().reward > QUARANTINE_REWARD);
}

/// An all-quarantined REINFORCE batch skips the controller update
/// instead of asserting on an empty batch.
#[test]
fn all_quarantined_batch_skips_controller_update() {
    let _g = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    let (ev, rc) = setup();
    // Quarantine the entire first batch (iterations 0..5), nothing after.
    yoso::chaos::install(
        &FaultPlan::new(3).rule(FaultRule::at(FaultKind::NanReward, &[0, 1, 2, 3, 4])),
    );
    let (out, _) = run_search(&ev, rc, Search::Rl, 13);
    yoso::chaos::disarm();
    let out = out.unwrap();
    assert_eq!(out.history.len(), 20);
    assert_eq!(out.quarantine.len(), 5);
    assert!(out.history[5..].iter().all(|r| r.reward.is_finite()));
    assert!(out.best().reward > QUARANTINE_REWARD);
}

/// A GP fit failure during fast-evaluator construction is a typed
/// [`Error::Fit`], never a panic.
#[test]
fn gp_fit_failure_is_a_typed_error() {
    let _g = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    let sk = yoso::arch::NetworkSkeleton::tiny();
    let mut data_cfg = yoso::dataset::SynthCifarConfig::tiny();
    data_cfg.train_count = 64;
    let data = yoso::dataset::SynthCifar::generate(&data_cfg);
    let hyper_cfg = yoso::hypernet::HyperTrainConfig {
        epochs: 1,
        batch_size: 32,
        augment: false,
        ..Default::default()
    };
    yoso::chaos::install(&FaultPlan::new(4).rule(FaultRule::rate(FaultKind::GpFitFail, 1.0)));
    let err = FastEvaluator::build(&sk, &data, &hyper_cfg, 60, 0).err();
    yoso::chaos::disarm();
    assert!(matches!(err, Some(Error::Fit(_))), "{err:?}");
}

/// Poisoned GP predictions degrade per-query to the memoized simulator:
/// the evaluator keeps returning finite metrics that match simulator
/// ground truth, and reports how often it had to.
#[test]
fn poisoned_gp_predictions_fall_back_to_the_simulator() {
    let _g = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    let sk = yoso::arch::NetworkSkeleton::tiny();
    let mut data_cfg = yoso::dataset::SynthCifarConfig::tiny();
    data_cfg.train_count = 64;
    let data = yoso::dataset::SynthCifar::generate(&data_cfg);
    let hyper_cfg = yoso::hypernet::HyperTrainConfig {
        epochs: 1,
        batch_size: 32,
        augment: false,
        ..Default::default()
    };
    let fast = FastEvaluator::build(&sk, &data, &hyper_cfg, 60, 0).unwrap();
    assert_eq!(fast.degraded_queries(), 0);

    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let points: Vec<yoso::arch::DesignPoint> = (0..6)
        .map(|_| yoso::arch::DesignPoint::random(&mut rng))
        .collect();

    yoso::chaos::install(&FaultPlan::new(5).rule(FaultRule::rate(FaultKind::GpPredictNan, 1.0)));
    let degraded: Vec<Evaluation> = points.iter().map(|p| fast.evaluate(p).unwrap()).collect();
    yoso::chaos::disarm();

    assert_eq!(fast.degraded_queries(), points.len() as u64);
    let sim = yoso::accel::sim::Simulator::fast();
    for (p, e) in points.iter().zip(&degraded) {
        assert!(e.latency_ms.is_finite() && e.energy_mj.is_finite());
        let plan = sk.compile(&p.genotype);
        let truth = sim.simulate_plan(&plan, &p.hw);
        assert_eq!(
            e.latency_ms, truth.latency_ms,
            "degraded latency != simulator"
        );
        assert_eq!(e.energy_mj, truth.energy_mj, "degraded energy != simulator");
    }
}

/// An exhausted fault budget aborts with [`Error::FaultBudgetExhausted`]
/// and an emergency checkpoint; a chaos-free session resumes from it and
/// finishes the run with the quarantine ledger intact.
#[test]
fn fault_budget_exhaustion_checkpoints_and_resumes() {
    let _g = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    let (ev, rc) = setup();
    let dir = temp_dir("budget");
    // Every candidate quarantined: the budget of 3 trips at iteration 4.
    yoso::chaos::install(&FaultPlan::new(6).rule(FaultRule::rate(FaultKind::NanReward, 1.0)));
    let err = SearchSession::builder()
        .evaluator(&ev)
        .reward(rc)
        .strategy(Search::Random)
        .config(SearchConfig::builder().iterations(20).seed(17).build())
        .checkpoint_dir(&dir)
        .fault_budget(3)
        .run()
        .err();
    yoso::chaos::disarm();

    let Some(Error::FaultBudgetExhausted {
        faults,
        budget,
        checkpoint: Some(ckpt),
    }) = err
    else {
        panic!("expected FaultBudgetExhausted with a checkpoint, got {err:?}");
    };
    assert_eq!(budget, 3);
    assert_eq!(faults, 4);
    assert_eq!(ckpt, dir.join(checkpoint_file_name(4)));
    assert!(ckpt.exists());

    // Chaos fixed (disarmed): resume finishes the remaining iterations.
    let resumed = SearchSession::resume_from(&ckpt)
        .unwrap()
        .evaluator(&ev)
        .run()
        .unwrap();
    assert_eq!(resumed.history.len(), 20);
    assert_eq!(
        resumed.quarantine.len(),
        4,
        "ledger restored from the checkpoint"
    );
    assert!(resumed.history[..4]
        .iter()
        .all(|r| r.reward == QUARANTINE_REWARD));
    assert!(resumed.history[4..]
        .iter()
        .all(|r| r.reward.is_finite() && r.reward > QUARANTINE_REWARD));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Without a checkpoint directory the budget error still types cleanly.
#[test]
fn fault_budget_without_checkpoint_dir_reports_none() {
    let _g = yoso::chaos::test_lock();
    yoso::chaos::disarm();
    let (ev, rc) = setup();
    yoso::chaos::install(&FaultPlan::new(8).rule(FaultRule::rate(FaultKind::NanReward, 1.0)));
    let err = SearchSession::builder()
        .evaluator(&ev)
        .reward(rc)
        .strategy(Search::Random)
        .config(SearchConfig::builder().iterations(10).seed(1).build())
        .fault_budget(0)
        .run()
        .err();
    yoso::chaos::disarm();
    assert!(
        matches!(
            err,
            Some(Error::FaultBudgetExhausted {
                faults: 1,
                budget: 0,
                checkpoint: None,
            })
        ),
        "{err:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the (sub-certain) fault plan, a search either returns a
    /// valid outcome — finite rewards, finite best, consistent ledger —
    /// or a typed error. Never a panic, never a non-finite best.
    ///
    /// The whole plan (rule count, kinds, rates < 0.9, caps, budget) is
    /// derived from one generator seed: the vendored proptest stand-in
    /// has no tuple strategies.
    #[test]
    fn arbitrary_fault_plans_never_panic_or_leak_non_finite_rewards(
        gen_seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let _g = yoso::chaos::test_lock();
        yoso::chaos::disarm();
        let (ev, rc) = setup();
        let mut g = StdRng::seed_from_u64(gen_seed);
        let seed: u64 = g.random_range(0..1000);
        let mut plan = FaultPlan::new(seed);
        for _ in 0..g.random_range(0..4usize) {
            let kind = FaultKind::ALL[g.random_range(0..FaultKind::ALL.len())];
            plan = plan.rule(
                FaultRule::rate(kind, g.random_range(0.0..0.9))
                    .max_faults(g.random_range(1..8u64))
                    .delay_ms(1),
            );
        }
        let budget: Option<u64> = if g.random_bool(0.5) {
            Some(g.random_range(0..6u64))
        } else {
            None
        };
        yoso::chaos::install(&plan);
        let mut builder = SearchSession::builder()
            .evaluator(&ev)
            .reward(rc)
            .strategy(Search::Random)
            .config(SearchConfig::builder().iterations(12).seed(seed).build());
        if let Some(b) = budget {
            builder = builder.fault_budget(b);
        }
        let result = builder.run();
        yoso::chaos::disarm();
        match result {
            Ok(out) => {
                prop_assert_eq!(out.history.len(), 12);
                for rec in &out.history {
                    prop_assert!(rec.reward.is_finite());
                }
                prop_assert!(out.best().reward.is_finite());
                for q in &out.quarantine {
                    prop_assert_eq!(
                        out.history[q.iteration].reward,
                        QUARANTINE_REWARD
                    );
                }
            }
            Err(Error::FaultBudgetExhausted { faults, budget: b, .. }) => {
                prop_assert!(faults > b);
            }
            Err(e) => {
                // Any other failure must still be one of the typed
                // variants (e.g. a chaos-injected GP fit error).
                let _ = e.to_string();
            }
        }
    }
}
