//! Cross-crate observability guarantees: the JSONL trace round-trips
//! bit-exactly through a file, and the per-iteration `search_iter`
//! stream is a pure function of the seed — identical at any worker-pool
//! thread count.

use yoso::prelude::*;

fn setup() -> (SurrogateEvaluator, RewardConfig) {
    let sk = yoso::arch::NetworkSkeleton::tiny();
    let ev = SurrogateEvaluator::new(sk.clone());
    let cons = calibrate_constraints(&sk, 60, 0, 50.0);
    (ev, RewardConfig::balanced(cons))
}

fn run_traced(ev: &SurrogateEvaluator, rc: RewardConfig, strategy: Strategy, trace: Trace) {
    SearchSession::builder()
        .evaluator(ev)
        .reward(rc)
        .strategy(strategy)
        .config(
            SearchConfig::builder()
                .iterations(30)
                .rollouts_per_update(6)
                .seed(17)
                .population(12)
                .tournament(3)
                .build(),
        )
        .trace(trace)
        .run()
        .unwrap();
}

/// Every line a traced session writes to disk parses back into an
/// [`Event`] that re-serializes to the identical string, and the
/// `search_iter` events round-trip through the typed [`SearchEvent`].
#[test]
fn trace_file_roundtrips_bit_exactly() {
    let path = std::env::temp_dir().join("yoso_trace_roundtrip_test.jsonl");
    let trace = Trace::to_path(&path).unwrap();
    let (ev, rc) = setup();
    run_traced(&ev, rc, Strategy::Rl, trace.clone());
    drop(trace); // flush

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    // search_start + 30 search_iter + controller_updates + summaries.
    assert!(lines.len() > 31, "only {} lines", lines.len());
    let mut iters = 0;
    for line in &lines {
        let event = Event::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        assert_eq!(&event.to_json(), line, "re-serialization diverged");
        if event.kind == SearchEvent::KIND {
            let se = SearchEvent::parse(line).expect("typed parse");
            assert_eq!(se.iteration, iters);
            assert_eq!(SearchEvent::parse(&se.to_json()), Some(se));
            iters += 1;
        }
    }
    assert_eq!(iters, 30);
    for kind in [
        "search_start",
        "search_summary",
        "cache_summary",
        "pool_summary",
    ] {
        assert!(
            lines.iter().any(|l| l.contains(&format!("\"{kind}\""))),
            "missing {kind}"
        );
    }
}

/// The `search_iter` stream for a fixed seed is byte-identical whether
/// the worker pool runs 1 thread or 8 — evaluation parallelism must not
/// leak into the search trajectory. Summary events carry wall times and
/// are excluded.
#[test]
fn search_iter_stream_is_identical_across_thread_counts() {
    let (ev, rc) = setup();
    let iter_lines = |threads: usize, strategy: Strategy| {
        yoso::pool::set_num_threads(threads);
        let trace = Trace::memory();
        run_traced(&ev, rc, strategy, trace.clone());
        yoso::pool::set_num_threads(0);
        trace
            .lines()
            .into_iter()
            .filter(|l| l.contains("\"search_iter\""))
            .collect::<Vec<_>>()
    };
    for strategy in [Strategy::Rl, Strategy::Evolution, Strategy::Random] {
        let one = iter_lines(1, strategy);
        let eight = iter_lines(8, strategy);
        assert_eq!(one.len(), 30, "{strategy}: wrong event count");
        assert_eq!(one, eight, "{strategy}: stream depends on thread count");
    }
}
