//! Offline stand-in for the `rand` crate (see `third_party/README.md`).
//!
//! Implements the subset of the rand 0.10 API this workspace uses:
//! [`TryRng`] / [`Rng`] / [`RngExt`] / [`SeedableRng`] and
//! [`rngs::StdRng`]. `StdRng` is a SplitMix64-seeded xoshiro256++
//! generator — deterministic per seed, but its stream differs from
//! upstream rand's ChaCha12-based `StdRng`.

#![forbid(unsafe_code)]

use std::convert::Infallible;
use std::ops::{Range, RangeInclusive};

/// A fallible random number generator (upstream `rand::TryRngCore`).
pub trait TryRng {
    /// Error produced on generation failure.
    type Error;
    /// Next `u32`, fallibly.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;
    /// Next `u64`, fallibly.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;
    /// Fills `dst` with random bytes, fallibly.
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
}

/// An infallible random number generator core.
pub trait Rng {
    /// Next `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

// `Rng` is blanket-implemented for every `TryRng<Error = Infallible>`.
impl<T: TryRng<Error = Infallible> + ?Sized> Rng for T {
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }
    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        match self.try_fill_bytes(dst) {
            Ok(()) => (),
            Err(e) => match e {},
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait StandardUniform: Sized {
    /// Draws a value from the type's standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardUniform for u64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardUniform for f32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl StandardUniform for f64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardUniform for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` inclusive when `inclusive`).
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                // Lemire-style unbiased-enough widening multiply.
                let x = rng.next_u64() as u128;
                let off = ((x * span as u128) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let u: $t = StandardUniform::standard(rng);
                let v = lo + (hi - lo) * u;
                if !inclusive && v >= hi && lo < hi {
                    // Rounding pushed us onto the excluded endpoint.
                    hi.next_down().max(lo)
                } else {
                    v.min(hi)
                }
            }
        }
    };
}
impl_sample_uniform_float!(f32);
impl_sample_uniform_float!(f64);

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience sampling methods (upstream `rand::Rng` extension surface).
pub trait RngExt: Rng {
    /// A value from the type's standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::standard(self)
    }

    /// A uniform value from `range`.
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The SplitMix64 mixing function (public so callers can derive
/// independent per-item seeds deterministically).
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Provided generators.
pub mod rngs {
    use super::{split_mix_64, SeedableRng, TryRng};
    use std::convert::Infallible;

    /// The standard deterministic generator: xoshiro256++ seeded through
    /// SplitMix64. (Upstream `StdRng` is ChaCha12; streams differ but all
    /// workspace code only relies on seed-determinism.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing. Feed it back
        /// through [`StdRng::from_state`] to resume the stream exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`]. An all-zero
        /// state (never produced by a valid generator) is remapped to a
        /// fixed nonzero state, as in `seed_from_u64`.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        #[inline]
        fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for v in &mut s {
                *v = split_mix_64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl TryRng for StdRng {
        type Error = Infallible;
        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok((self.next() >> 32) as u32)
        }
        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            Ok(self.next())
        }
        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
            for chunk in dst.chunks_mut(8) {
                let bytes = self.next().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&v));
            let u: f32 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v: i32 = rng.random_range(-1i32..=1);
            assert!((-1..=1).contains(&v));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2500..3500).contains(&heads), "{heads}");
    }

    #[test]
    fn fill_bytes_varies() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        rng.fill_bytes(&mut a);
        rng.fill_bytes(&mut b);
        assert_ne!(a, b);
    }
}
