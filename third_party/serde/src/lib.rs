//! Offline stand-in for `serde` (see `third_party/README.md`).
//!
//! Exposes the `Serialize` / `Deserialize` names in both the trait and
//! derive-macro namespaces. The derives are no-ops and the traits are
//! item-less markers: the workspace never serializes through serde (all
//! experiment output is hand-rolled CSV/JSON).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
