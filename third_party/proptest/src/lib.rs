//! Offline stand-in for `proptest` (see `third_party/README.md`).
//!
//! Implements the subset of the proptest API used by the workspace's
//! property tests: the [`Strategy`] trait with `prop_map` / `boxed`,
//! range and `Vec` strategies, [`any`], `collection::vec`, the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`] macros and a [`ProptestConfig`]-driven runner.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs but is not minimized), and case generation is seeded from the
//! test's module path so every run of a given test binary replays the
//! exact same cases.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Upstream proptest separates strategies from value trees to support
    /// shrinking; this stand-in generates values directly.
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy (upstream's `BoxedStrategy`).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // `lo..hi` is a uniform strategy over the half-open range.
    impl<T> Strategy for Range<T>
    where
        T: rand::SampleUniform,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    // A `Vec` of strategies yields a `Vec` of one draw from each.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// Types with a canonical "any value" strategy (upstream `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary_standard!(u32, u64, f32, f64, bool);

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random::<u64>() as usize
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random::<u64>() as i64
        }
    }
    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random::<u32>() as i32
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (upstream `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Sizes accepted by [`vec`] (upstream `SizeRange` conversions).
    pub trait IntoSizeRange {
        /// Converts to a half-open `[lo, hi)` length range.
        fn into_size_range(self) -> Range<usize>;
    }
    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }
    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into_size_range(),
        }
    }
}

/// Runner configuration, errors and the case loop.
pub mod test_runner {
    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};

    /// The RNG handed to strategies (deterministic per test and case).
    pub type TestRng = rand::rngs::StdRng;

    /// Runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case's inputs were rejected by `prop_assume!`; it is
        /// retried with fresh inputs and does not count against `cases`.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Runs `case` until `config.cases` cases are accepted, panicking on
    /// the first failure. Seeds derive from `name`, so runs replay
    /// identically.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut hasher);
        let base = hasher.finish();

        let max_attempts = config.cases.saturating_mul(10).saturating_add(100);
        let mut accepted = 0u32;
        let mut attempts = 0u32;
        while accepted < config.cases {
            assert!(
                attempts < max_attempts,
                "{name}: gave up after {attempts} attempts \
                 ({accepted}/{} cases accepted; too many prop_assume! rejections)",
                config.cases
            );
            let mut state = base ^ u64::from(attempts);
            let seed = rand::split_mix_64(&mut state);
            let mut rng = TestRng::seed_from_u64(seed);
            attempts += 1;
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: case {accepted} (attempt {attempts}) failed: {msg}")
                }
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

pub use strategy::{any, Strategy};

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __result
                },
            );
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Rejects the current case's inputs; the runner retries with fresh ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u64..10, x in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn assume_filters(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            let doubled = crate::collection::vec(0usize..5, 2..6)
                .prop_map(|w| w.len() * 2)
                .boxed();
            let _ = doubled;
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn vec_of_boxed(seq in vec![(0usize..3).boxed(), (0usize..7).boxed()]) {
            prop_assert_eq!(seq.len(), 2);
            prop_assert!(seq[0] < 3 && seq[1] < 7);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::{run, ProptestConfig};
        let mut a = Vec::new();
        run(&ProptestConfig::with_cases(10), "det", |rng| {
            a.push((0u64..1000).generate(rng));
            Ok(())
        });
        let mut b = Vec::new();
        run(&ProptestConfig::with_cases(10), "det", |rng| {
            b.push((0u64..1000).generate(rng));
            Ok(())
        });
        assert_eq!(a, b);
    }
}
