//! Offline stand-in for `parking_lot` (see `third_party/README.md`).
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! poison-free guard API (`read()` / `write()` / `lock()` return guards
//! directly). Poisoned locks are recovered rather than propagated —
//! matching parking_lot, which has no lock poisoning.

#![forbid(unsafe_code)]

use std::sync;

/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn try_locks_report_contention() {
        let l = RwLock::new(0);
        {
            let _r = l.read();
            assert!(l.try_read().is_some(), "readers share");
            assert!(l.try_write().is_none(), "writer blocked by reader");
        }
        {
            let _w = l.write();
            assert!(l.try_read().is_none(), "reader blocked by writer");
            assert!(l.try_write().is_none(), "writer blocked by writer");
        }
        assert!(l.try_write().is_some(), "uncontended after guards drop");

        let m = Mutex::new(());
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
