//! Offline stand-in for `criterion` (see `third_party/README.md`).
//!
//! A minimal wall-clock benchmarking harness exposing the subset of the
//! criterion API the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Differences from upstream: no statistical analysis, outlier detection
//! or HTML reports — each benchmark runs `sample_size` timed iterations
//! after one warm-up and prints mean / min / max per iteration. A
//! leading non-flag CLI argument filters benchmarks by substring, so
//! `cargo bench -p yoso-bench -- sgemm` behaves as with real criterion.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark timing loop (upstream `criterion::Bencher`).
pub struct Bencher {
    samples: usize,
    /// Per-sample durations recorded by [`Bencher::iter`].
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Times `f` once per sample (after one untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.recorded.clear();
        self.recorded.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.recorded.push(start.elapsed());
        }
    }
}

/// Identifies a parameterized benchmark (upstream `criterion::BenchmarkId`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.full.fmt(f)
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(id: &str, samples: usize, filter: Option<&str>, f: &mut dyn FnMut(&mut Bencher)) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        samples,
        recorded: Vec::new(),
    };
    f(&mut b);
    if b.recorded.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    let total: Duration = b.recorded.iter().sum();
    let mean = total / b.recorded.len() as u32;
    let min = *b.recorded.iter().min().expect("non-empty");
    let max = *b.recorded.iter().max().expect("non-empty");
    println!(
        "{id}: mean {} / iter (min {}, max {}, {} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        b.recorded.len()
    );
}

/// Benchmark registry and runner (upstream `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag CLI argument = substring filter (as upstream).
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion {
            sample_size: 100,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, self.filter.as_deref(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.effective_samples(),
            self.criterion.filter.as_deref(),
            &mut f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.effective_samples(),
            self.criterion.filter.as_deref(),
            &mut |b| f(b, input),
        );
        self
    }

    /// Finishes the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| b.iter(|| n * n));
        group.bench_function("id", |b| b.iter(|| ()));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("exact", "ws").to_string(), "exact/ws");
    }
}
