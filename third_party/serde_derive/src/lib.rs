//! Offline stand-in for `serde_derive` (see `third_party/README.md`).
//!
//! Nothing in the workspace actually serializes through serde — the
//! derives exist so data structures advertise serializability for future
//! consumers. Until a real serde is available these derives expand to
//! nothing (the marker traits in the `serde` stub have no items).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
